//! Differential test harness for the [`PriorityIndex`] backends: arbitrary
//! insert/remove/update-priority/pop sequences must leave the DSL, BTree,
//! and pairing-heap backends in observably identical states — same heads,
//! same full priority order, same pop sequence — with the tie-break rules
//! (lag descending, then deadline ascending, then workflow id ascending;
//! change time ascending, then id, on the ct list) pinned by a model.
//!
//! The case count defaults to 64 and is overridable through the
//! `INDEX_DIFFERENTIAL_CASES` environment variable (CI runs a fixed high
//! count).

use proptest::collection::vec;
use proptest::prelude::*;
use proptest::TestCaseError;
use woha_core::{BTreeIndex, DslIndex, PairingIndex, PriorityIndex};
use woha_model::{SimTime, WorkflowId};

/// One scripted operation, decoded from numeric codes so any random tuple
/// is a legal script (remove/update/pop on an empty index become inserts).
#[derive(Debug, Clone, Copy)]
enum Op {
    Insert,
    Remove,
    Update,
    Pop,
}

fn decode(code: u8) -> Op {
    match code % 8 {
        0..=2 => Op::Insert,
        3 => Op::Remove,
        4 | 5 => Op::Update,
        _ => Op::Pop,
    }
}

/// The reference model: a plain vector of `(wf, ct, lag, deadline)` rows,
/// sorted on demand with the pinned tie-break rules.
#[derive(Debug, Default)]
struct Model {
    rows: Vec<(u64, SimTime, i64, SimTime)>,
}

impl Model {
    fn priority_order(&self) -> Vec<(i64, WorkflowId)> {
        let mut rows: Vec<_> = self.rows.clone();
        rows.sort_by(|a, b| {
            b.2.cmp(&a.2) // lag descending
                .then_with(|| a.3.cmp(&b.3)) // deadline ascending
                .then_with(|| a.0.cmp(&b.0)) // id ascending
        });
        rows.into_iter()
            .map(|(wf, _, lag, _)| (lag, WorkflowId::new(wf)))
            .collect()
    }

    fn min_ct(&self) -> Option<(SimTime, WorkflowId)> {
        self.rows
            .iter()
            .map(|&(wf, ct, _, _)| (ct, WorkflowId::new(wf)))
            .min()
    }
}

/// Runs one script against the model and all three backends, checking
/// observable agreement after every operation.
fn run_script(script: &[(u8, u64, u64, u64, u64)]) -> Result<(), TestCaseError> {
    let mut model = Model::default();
    let mut backends: [Box<dyn PriorityIndex>; 3] = [
        Box::new(DslIndex::new()),
        Box::new(BTreeIndex::new()),
        Box::new(PairingIndex::new()),
    ];
    let mut next_id = 0u64;
    let mut pops: Vec<Vec<(i64, WorkflowId)>> = vec![Vec::new(); 3];

    for &(code, pick, ct, lag, deadline) in script {
        let op = if model.rows.is_empty() {
            Op::Insert
        } else {
            decode(code)
        };
        // Narrow key ranges force collisions so ties actually occur.
        let ct = SimTime::from_millis(ct % 50);
        let lag = (lag % 20) as i64 - 10;
        let deadline = SimTime::from_millis(deadline % 30);
        match op {
            Op::Insert => {
                let wf = WorkflowId::new(next_id);
                next_id += 1;
                model.rows.push((wf.as_u64(), ct, lag, deadline));
                for idx in backends.iter_mut() {
                    idx.insert(wf, ct, lag, deadline);
                }
            }
            Op::Remove => {
                let at = (pick as usize) % model.rows.len();
                let (wf, ct, lag, deadline) = model.rows.swap_remove(at);
                for idx in backends.iter_mut() {
                    idx.remove(WorkflowId::new(wf), ct, lag, deadline);
                }
            }
            Op::Update => {
                let at = (pick as usize) % model.rows.len();
                let (wf, old_ct, old_lag, dl) = model.rows[at];
                model.rows[at] = (wf, ct, lag, dl);
                for idx in backends.iter_mut() {
                    idx.update(WorkflowId::new(wf), old_ct, old_lag, ct, lag, dl);
                }
            }
            Op::Pop => {
                // Pop = take the priority head and delete it, as the
                // scheduler does when the top workflow finishes.
                let expected = model.priority_order()[0];
                let at = model
                    .rows
                    .iter()
                    .position(|&(wf, ..)| wf == expected.1.as_u64())
                    .expect("head is live");
                let (wf, ct, lag, deadline) = model.rows.swap_remove(at);
                for (popped, idx) in pops.iter_mut().zip(backends.iter_mut()) {
                    let head = idx.max_priority();
                    prop_assert_eq!(head, Some(expected), "pop head of {}", idx.name());
                    idx.remove(WorkflowId::new(wf), ct, lag, deadline);
                    popped.push(expected);
                }
            }
        }
        // Observable agreement with the model after every operation.
        for idx in backends.iter_mut() {
            prop_assert_eq!(idx.len(), model.rows.len(), "len of {}", idx.name());
            prop_assert_eq!(idx.min_ct(), model.min_ct(), "min_ct of {}", idx.name());
            prop_assert_eq!(
                idx.max_priority(),
                model.priority_order().first().copied(),
                "max_priority of {}",
                idx.name()
            );
        }
    }

    // Identical pop orders across backends, and full-order agreement with
    // the model at the end of the script.
    prop_assert_eq!(&pops[0], &pops[1], "dsl vs btree pop order");
    prop_assert_eq!(&pops[0], &pops[2], "dsl vs pheap pop order");
    let reference = model.priority_order();
    for idx in backends.iter_mut() {
        prop_assert_eq!(
            &idx.priority_order(),
            &reference,
            "final order of {}",
            idx.name()
        );
    }

    // Drain what is left through pops: the complete remaining pop order
    // must match across all backends and the model.
    while !model.rows.is_empty() {
        let expected = model.priority_order()[0];
        let at = model
            .rows
            .iter()
            .position(|&(wf, ..)| wf == expected.1.as_u64())
            .expect("head is live");
        let (wf, ct, lag, deadline) = model.rows.swap_remove(at);
        for idx in backends.iter_mut() {
            prop_assert_eq!(idx.max_priority(), Some(expected), "drain {}", idx.name());
            idx.remove(WorkflowId::new(wf), ct, lag, deadline);
        }
    }
    for idx in backends.iter_mut() {
        prop_assert!(idx.is_empty(), "{} drained", idx.name());
    }
    Ok(())
}

fn cases() -> u32 {
    std::env::var("INDEX_DIFFERENTIAL_CASES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(64)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(cases()))]

    /// Arbitrary op scripts leave all three backends observably identical.
    #[test]
    fn backends_are_observably_identical(
        script in vec((0u8..32, 0u64..1024, 0u64..64, 0u64..64, 0u64..64), 0..120),
    ) {
        run_script(&script)?;
    }
}

/// A deterministic script exercising every tie-break rule once, kept
/// outside the proptest loop so a regression names the exact rule broken.
#[test]
fn tie_breaks_are_pinned() {
    let mut backends: [Box<dyn PriorityIndex>; 3] = [
        Box::new(DslIndex::new()),
        Box::new(BTreeIndex::new()),
        Box::new(PairingIndex::new()),
    ];
    for idx in backends.iter_mut() {
        let t = SimTime::from_millis;
        // Same lag, same deadline: id ascending (2 before 5).
        idx.insert(WorkflowId::new(5), t(10), 7, t(100));
        idx.insert(WorkflowId::new(2), t(11), 7, t(100));
        // Same lag, earlier deadline wins regardless of id.
        idx.insert(WorkflowId::new(9), t(12), 7, t(50));
        // Larger lag wins regardless of deadline and id.
        idx.insert(WorkflowId::new(7), t(13), 8, t(999));
        // ct list: time ascending, then id ascending.
        idx.insert(WorkflowId::new(1), t(10), -5, t(200));

        let order: Vec<u64> = idx
            .priority_order()
            .into_iter()
            .map(|(_, wf)| wf.as_u64())
            .collect();
        assert_eq!(order, vec![7, 9, 2, 5, 1], "{}", idx.name());
        assert_eq!(
            idx.min_ct(),
            Some((t(10), WorkflowId::new(1))),
            "{}",
            idx.name()
        );
    }
}
