//! Property tests for the multi-tenant admission gate: per-tenant caps
//! and budgets are invariants that hold for *every* arrival/release
//! interleaving, and shedding is a deterministic function of the sequence
//! (two gates fed the same script make identical decisions).

use proptest::collection::vec;
use proptest::prelude::*;
use proptest::TestCaseError;
use woha_core::{AdmissionController, MultiTenantGate, OverloadPolicy, TenantSpec};
use woha_model::{JobSpec, SimDuration, SimTime, WorkflowBuilder, WorkflowSpec};
use woha_sim::ClusterConfig;

const TENANTS: &[&str] = &["ads", "etl", "ml"];

fn workflow(name: &str, maps: u32, map_secs: u64, deadline_mins: u64) -> WorkflowSpec {
    let mut b = WorkflowBuilder::new(name);
    b.add_job(JobSpec::new(
        "j",
        maps,
        0,
        SimDuration::from_secs(map_secs),
        SimDuration::ZERO,
    ));
    if deadline_mins > 0 {
        b.relative_deadline(SimDuration::from_mins(deadline_mins));
    }
    b.build().unwrap()
}

/// One scripted step, decoded from raw numeric draws so any tuple is a
/// legal script: submit a workflow for a tenant, or release an earlier
/// admitted one.
#[derive(Debug, Clone, Copy)]
struct Step {
    tenant: usize,
    maps: u32,
    map_secs: u64,
    deadline_mins: u64,
    /// Release an admitted workflow (chosen by this modulus) instead of
    /// submitting, when odd.
    action: u8,
}

fn policy_of(code: u8) -> OverloadPolicy {
    match code % 3 {
        0 => OverloadPolicy::Necessity,
        1 => OverloadPolicy::ValueDensity,
        _ => OverloadPolicy::WeightedFair,
    }
}

fn build_gate(policy: OverloadPolicy, cap: usize, budget_ms: u128) -> MultiTenantGate {
    let mut g = MultiTenantGate::new(&ClusterConfig::uniform(4, 2, 1))
        .with_controller(AdmissionController::new(&ClusterConfig::uniform(4, 2, 1)))
        .with_policy(policy);
    for (i, t) in TENANTS.iter().enumerate() {
        g.add_tenant(
            TenantSpec::new(*t, cap)
                .with_slot_budget(budget_ms)
                .with_weight(1.0 + i as f64),
        );
    }
    g
}

/// Replays a script against a fresh gate, checking the cap/budget
/// invariants after every step, and returns the decision log.
fn run_script(
    policy: OverloadPolicy,
    cap: usize,
    budget_ms: u128,
    steps: &[Step],
) -> Result<Vec<Result<(), String>>, TestCaseError> {
    let mut gate = build_gate(policy, cap, budget_ms);
    let mut admitted: Vec<String> = Vec::new();
    let mut decisions = Vec::new();
    let mut seq = 0u64;
    for (k, s) in steps.iter().enumerate() {
        let now = SimTime::from_secs(k as u64 * 10);
        if s.action % 2 == 1 && !admitted.is_empty() {
            let name = admitted.remove(s.action as usize % admitted.len());
            gate.complete(&name);
        } else {
            seq += 1;
            let tenant = TENANTS[s.tenant % TENANTS.len()];
            let name = format!("{tenant}/wf-{seq}");
            let w = workflow(
                &name,
                1 + s.maps % 16,
                10 + s.map_secs % 120,
                s.deadline_mins % 30,
            )
            .reissued(
                name.clone(),
                now,
                if s.deadline_mins % 30 == 0 {
                    SimTime::MAX
                } else {
                    now.saturating_add(SimDuration::from_mins(s.deadline_mins % 30))
                },
            );
            let decision = gate.try_admit(&w, now);
            if decision.is_ok() {
                admitted.push(name);
            }
            decisions.push(decision);
        }
        // The hard invariants: no tenant ever holds more than its cap or
        // budget, no matter the policy or interleaving.
        for t in TENANTS {
            prop_assert!(
                gate.tenant_in_flight(t) <= cap,
                "tenant {t} exceeds cap {cap}: {}",
                gate.tenant_in_flight(t)
            );
            prop_assert!(
                gate.tenant_work_ms(t) <= budget_ms,
                "tenant {t} exceeds budget {budget_ms}: {}",
                gate.tenant_work_ms(t)
            );
        }
    }
    Ok(decisions)
}

proptest! {
    /// Caps and budgets are never exceeded, under any policy, for
    /// arbitrary admit/release scripts.
    #[test]
    fn caps_and_budgets_hold_for_all_scripts(
        policy_code in 0u8..3,
        cap in 1usize..4,
        raw in vec((0usize..8, 0u32..64, 0u64..512, 0u64..64, 0u8..8), 1..40),
    ) {
        let steps: Vec<Step> = raw
            .iter()
            .map(|&(tenant, maps, map_secs, deadline_mins, action)| Step {
                tenant,
                maps,
                map_secs,
                deadline_mins,
                action,
            })
            .collect();
        run_script(policy_of(policy_code), cap, 2_000_000, &steps)?;
    }

    /// Shedding is deterministic: the same script against two fresh gates
    /// produces the same decision log, label for label.
    #[test]
    fn shedding_is_deterministic(
        policy_code in 0u8..3,
        raw in vec((0usize..8, 0u32..64, 0u64..512, 0u64..64, 0u8..8), 1..40),
    ) {
        let steps: Vec<Step> = raw
            .iter()
            .map(|&(tenant, maps, map_secs, deadline_mins, action)| Step {
                tenant,
                maps,
                map_secs,
                deadline_mins,
                action,
            })
            .collect();
        let a = run_script(policy_of(policy_code), 2, 1_000_000, &steps)?;
        let b = run_script(policy_of(policy_code), 2, 1_000_000, &steps)?;
        prop_assert_eq!(a, b);
    }
}
