//! Tier-1 end-to-end determinism check for the parallel sweep
//! orchestrator: the same multi-cell grid run with 1, 2, and 8 worker
//! threads must produce **byte-identical** canonical JSON. This is the
//! contract every ported bench binary's `--jobs` flag relies on.

use woha_bench::scenarios::{demo_cluster, fig11_workflows};
use woha_bench::sweep::{CellKey, SimSweep};
use woha_bench::SchedulerKind;
use woha_model::SimDuration;
use woha_sim::{FaultConfig, SimConfig};

const KINDS: [SchedulerKind; 4] = [
    SchedulerKind::Edf,
    SchedulerKind::Fifo,
    SchedulerKind::Fair,
    SchedulerKind::WohaLpf,
];

/// The failure-study shape in miniature: 2 MTBF points × 4 schedulers
/// on the demo cluster = 8 cells, exercising both the fault-free and
/// fault-injecting driver paths.
fn grid(workflows: &[woha_model::WorkflowSpec]) -> SimSweep<'_> {
    let cluster = demo_cluster();
    let config = SimConfig {
        duration_jitter: 0.1,
        seed: 7,
        ..SimConfig::default()
    };
    let mttr = SimDuration::from_mins(3);
    let mut sweep = SimSweep::new();
    for (label, mtbf) in [("none", None), ("12m", Some(SimDuration::from_mins(12)))] {
        let faulty = match mtbf {
            Some(mtbf) => cluster
                .clone()
                .with_faults(FaultConfig::with_mtbf(mtbf, mttr)),
            None => cluster.clone(),
        };
        sweep.push_kinds(
            &CellKey::new().with("mtbf", label),
            &KINDS,
            workflows,
            &faulty,
            &config,
        );
    }
    sweep
}

#[test]
fn sweep_is_byte_identical_across_thread_counts() {
    let workflows = fig11_workflows();
    let sweep = grid(&workflows);
    assert_eq!(sweep.len(), 8);

    let serial = sweep.run(1);
    let serial_json = serial.canonical_json();
    assert_eq!(serial.jobs, 1);

    for jobs in [2, 8] {
        let pooled = sweep.run(jobs);
        assert_eq!(
            serial_json,
            pooled.canonical_json(),
            "canonical sweep output differs between --jobs 1 and --jobs {jobs}"
        );
        // Per-cell timings are wall-clock (never part of the canonical
        // output), but the orchestrator must still report one per cell,
        // in specification order.
        assert_eq!(pooled.timings.len(), sweep.len());
        for (timing, (key, _)) in pooled.timings.iter().zip(&pooled.cells) {
            assert_eq!(timing.label, key.label());
        }
    }
}

#[test]
fn sweep_results_are_in_specification_order() {
    let workflows = fig11_workflows();
    let sweep = grid(&workflows);
    let run = sweep.run(4);
    let labels: Vec<String> = run.cells.iter().map(|(key, _)| key.label()).collect();
    let mut expected = Vec::new();
    for mtbf in ["none", "12m"] {
        for kind in KINDS {
            expected.push(format!("mtbf={mtbf} scheduler={kind}"));
        }
    }
    assert_eq!(labels, expected);
}
