//! Property tests for the sweep orchestrator's deterministic aggregator:
//! cell completions arriving in **any** order must merge to exactly the
//! sorted-order merge, and `run_sweep` itself must be jobs-invariant.

use proptest::collection::vec;
use proptest::prelude::*;
use woha_bench::sweep::{merge_completions, run_sweep, CellKey};
use woha_trace::Rng;

proptest! {
    /// Randomly permuted completion orders merge identically to the
    /// in-order merge (the parallel pool's arrival order is arbitrary).
    #[test]
    fn merge_is_permutation_invariant(
        values in vec(0u64..1_000_000, 1..64),
        seed in 0u64..u64::MAX,
    ) {
        let in_order: Vec<(usize, u64)> = values.iter().copied().enumerate().collect();
        let mut shuffled = in_order.clone();
        Rng::new(seed).shuffle(&mut shuffled);
        let sorted_merge = merge_completions(values.len(), in_order);
        let shuffled_merge = merge_completions(values.len(), shuffled);
        prop_assert_eq!(&sorted_merge, &shuffled_merge);
        prop_assert_eq!(&sorted_merge, &values);
    }

    /// `run_sweep` returns specification-order results for every thread
    /// count, even when per-cell cost varies wildly with the input.
    #[test]
    fn run_sweep_is_jobs_invariant(
        values in vec(0u64..10_000, 1..32),
        jobs in 1usize..9,
    ) {
        let cells: Vec<(CellKey, u64)> = values
            .iter()
            .enumerate()
            .map(|(i, &v)| (CellKey::new().with("i", i), v))
            .collect();
        // Work skewed by value so completion order differs from spec order.
        let work = |_: &CellKey, &v: &u64| -> u64 {
            (0..v % 2_048).fold(v, |acc, x| acc.wrapping_mul(31).wrapping_add(x))
        };
        let serial = run_sweep(&cells, 1, work);
        let pooled = run_sweep(&cells, jobs, work);
        prop_assert_eq!(&serial.results, &pooled.results);
        prop_assert_eq!(pooled.timings.len(), cells.len());
    }
}
