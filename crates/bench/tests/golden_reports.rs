//! Golden-report regression corpus.
//!
//! Each file in `tests/golden/` is the canonical JSON of one scheduler's
//! [`SimReport`] on the Fig 11 demo scenario (`fig11_workflows` on
//! `demo_cluster`, jitter 0.1, seed 7 — the same grid `sweep_bench
//! --quick` exercises). "Canonical" means serialized via
//! [`woha_bench::canonical_report_json`], which zeroes the one wall-clock
//! field (`scheduler_nanos`) so the bytes are reproducible on any
//! machine and any thread count.
//!
//! If a scheduler's behaviour changes **intentionally**, regenerate the
//! corpus and review the diff like source code:
//!
//! ```text
//! WOHA_BLESS=1 cargo test -p woha-bench --test golden_reports
//! git diff crates/bench/tests/golden/
//! ```
//!
//! An unintentional diff here means a scheduling-behaviour regression:
//! do not bless it away without understanding the cause.

use std::fs;
use std::path::PathBuf;

use woha_bench::scenarios::{demo_cluster, fig11_workflows};
use woha_bench::{canonical_report_json, run_one, SchedulerKind};
use woha_sim::SimConfig;

/// The four schedulers the corpus pins, with their corpus file stems.
const CORPUS: [(SchedulerKind, &str); 4] = [
    (SchedulerKind::Edf, "edf"),
    (SchedulerKind::Fifo, "fifo"),
    (SchedulerKind::Fair, "fair"),
    (SchedulerKind::WohaLpf, "woha_lpf"),
];

fn golden_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden")
}

fn scenario_config() -> SimConfig {
    SimConfig {
        duration_jitter: 0.1,
        seed: 7,
        ..SimConfig::default()
    }
}

#[test]
fn golden_reports_match_corpus() {
    let workflows = fig11_workflows();
    let cluster = demo_cluster();
    let config = scenario_config();
    let bless = std::env::var_os("WOHA_BLESS").is_some();
    if bless {
        fs::create_dir_all(golden_dir()).expect("create tests/golden");
    }
    let mut diverged = Vec::new();
    for (kind, stem) in CORPUS {
        let report = run_one(kind, &workflows, &cluster, &config);
        let json = canonical_report_json(&report);
        let path = golden_dir().join(format!("{stem}.json"));
        if bless {
            fs::write(&path, &json).expect("write golden file");
            continue;
        }
        let expected = fs::read_to_string(&path).unwrap_or_else(|e| {
            panic!(
                "missing golden file {} ({e}); regenerate the corpus with \
                 `WOHA_BLESS=1 cargo test -p woha-bench --test golden_reports`",
                path.display()
            )
        });
        if json != expected {
            diverged.push(stem);
        }
    }
    assert!(
        diverged.is_empty(),
        "scheduler report(s) diverged from the golden corpus: {diverged:?}. \
         If the behaviour change is intentional, re-bless with \
         `WOHA_BLESS=1 cargo test -p woha-bench --test golden_reports` \
         and review the diff under crates/bench/tests/golden/."
    );
}

#[test]
fn golden_corpus_is_canonical() {
    // The corpus must not encode wall-clock time: canonicalization zeroes
    // `scheduler_nanos`, so every committed file must carry a zero there.
    for (_, stem) in CORPUS {
        let path = golden_dir().join(format!("{stem}.json"));
        let Ok(text) = fs::read_to_string(&path) else {
            continue; // missing files are reported by the main test
        };
        let value: serde::Value = serde_json::from_str(&text).expect("golden file parses");
        let fields = value.as_object().expect("golden file is a JSON object");
        let nanos = fields
            .iter()
            .find(|(k, _)| k == "scheduler_nanos")
            .map(|(_, v)| v.clone());
        assert_eq!(
            nanos,
            Some(serde::Value::U64(0)),
            "{} is not canonical (scheduler_nanos != 0)",
            path.display()
        );
    }
}
