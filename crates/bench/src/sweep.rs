//! The parallel sweep orchestrator: fan a grid of independent scenario
//! cells across worker threads and aggregate the results
//! **deterministically**.
//!
//! Every paper figure is a grid of shared-nothing cells (seeds ×
//! schedulers × MTBF × index backends), each one `run_simulation` call.
//! [`run_sweep`] executes such a grid on a pool of `jobs` OS threads: a
//! shared atomic cursor hands cells to workers in specification order,
//! completed cells flow back over a channel, and [`merge_completions`]
//! re-keys them by cell index — so the aggregated output is **byte
//! identical regardless of thread count or completion order**. `jobs = 1`
//! runs the cells inline on the caller's thread, preserving the serial
//! path exactly.
//!
//! The determinism contract:
//!
//! - cell execution is shared-nothing (each cell builds its own scheduler
//!   and consumes immutable borrows of the workload/cluster/config);
//! - results are ordered by cell *specification* index, never by
//!   completion order;
//! - wall-clock measurements ([`CellTiming`], [`SweepRun::wall`]) are
//!   carried next to the results, not inside them, and
//!   [`canonical_report_json`] zeroes [`SimReport::scheduler_nanos`] — the
//!   one wall-clock field inside a report — so serialized sweep output is
//!   reproducible bit for bit.
//!
//! [`SimSweep`] layers the common scenario-grid vocabulary on top: cells
//! keyed by [`CellKey`] axes that each run one simulation.

use crate::schedulers::SchedulerKind;
use serde::Serialize;
use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;
use std::time::{Duration, Instant};
use woha_model::{SlotKind, WorkflowSpec};
use woha_sim::{run_simulation, ClusterConfig, SimConfig, SimReport, WorkflowScheduler};

/// Coordinates of one sweep cell: an ordered list of `(axis, value)`
/// pairs, e.g. `mtbf=8h scheduler=EDF`. Axis order is the order of
/// [`with`](CellKey::with) calls, so labels are stable across runs.
#[derive(Debug, Clone, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CellKey {
    axes: Vec<(String, String)>,
}

impl CellKey {
    /// An empty key (for single-axis sweeps built via
    /// [`SimSweep::push_kinds`]).
    pub fn new() -> Self {
        CellKey::default()
    }

    /// Returns the key extended by one `axis=value` coordinate.
    pub fn with(mut self, axis: impl Into<String>, value: impl fmt::Display) -> Self {
        self.axes.push((axis.into(), value.to_string()));
        self
    }

    /// The value of one axis, if present.
    pub fn get(&self, axis: &str) -> Option<&str> {
        self.axes
            .iter()
            .find(|(a, _)| a == axis)
            .map(|(_, v)| v.as_str())
    }

    /// Whether every `(axis, value)` pair of `selector` matches.
    pub fn matches(&self, selector: &[(&str, &str)]) -> bool {
        selector.iter().all(|&(a, v)| self.get(a) == Some(v))
    }

    /// The canonical `axis=value axis=value` label.
    pub fn label(&self) -> String {
        self.axes
            .iter()
            .map(|(a, v)| format!("{a}={v}"))
            .collect::<Vec<_>>()
            .join(" ")
    }
}

impl fmt::Display for CellKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label())
    }
}

/// Wall-clock cost of one cell, carried *next to* the deterministic
/// results (never inside them) and fed to `BENCH_sweep.json`.
#[derive(Debug, Clone)]
pub struct CellTiming {
    /// The cell's [`CellKey::label`].
    pub label: String,
    /// Wall-clock time the cell's run call took.
    pub wall: Duration,
}

/// The aggregated outcome of one sweep execution.
#[derive(Debug, Clone)]
pub struct SweepRun<R> {
    /// One result per cell, in **specification order** (independent of
    /// completion order and thread count).
    pub results: Vec<(CellKey, R)>,
    /// Per-cell wall times, in the same order.
    pub timings: Vec<CellTiming>,
    /// Worker threads actually used.
    pub jobs: usize,
    /// Wall-clock time of the whole sweep.
    pub wall: Duration,
}

/// The machine's available parallelism (the `--jobs` default).
pub fn available_jobs() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// Parses a `--jobs N` / `--jobs=N` flag out of an argument list.
/// `Ok(None)` when absent; `0` means "use [`available_jobs`]".
pub fn parse_jobs<I: IntoIterator<Item = String>>(args: I) -> Result<Option<usize>, String> {
    let mut args = args.into_iter();
    while let Some(arg) = args.next() {
        let value = if arg == "--jobs" {
            args.next().ok_or("--jobs needs a value")?
        } else if let Some(v) = arg.strip_prefix("--jobs=") {
            v.to_string()
        } else {
            continue;
        };
        let n: usize = value
            .parse()
            .map_err(|_| format!("--jobs: not a number: {value}"))?;
        return Ok(Some(if n == 0 { available_jobs() } else { n }));
    }
    Ok(None)
}

/// Reads `--jobs` from the process arguments, defaulting to `default`
/// (pass [`available_jobs()`] for simulation sweeps, `1` for wall-clock
/// microbenchmarks whose measurements parallel cells would distort).
/// Exits with a usage message on a malformed value.
pub fn jobs_flag_or(default: usize) -> usize {
    match parse_jobs(std::env::args().skip(1)) {
        Ok(n) => n.unwrap_or(default),
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(2);
        }
    }
}

/// The deterministic aggregator: re-keys `(cell index, value)` completion
/// records — arriving in **any** order — into specification order.
///
/// # Panics
///
/// Panics if an index is out of range, duplicated, or missing: a sweep
/// must complete every cell exactly once.
pub fn merge_completions<T>(
    count: usize,
    completions: impl IntoIterator<Item = (usize, T)>,
) -> Vec<T> {
    let mut slots: Vec<Option<T>> = Vec::new();
    slots.resize_with(count, || None);
    for (index, value) in completions {
        assert!(index < count, "cell index {index} out of range ({count})");
        assert!(slots[index].is_none(), "cell {index} completed twice");
        slots[index] = Some(value);
    }
    slots
        .into_iter()
        .enumerate()
        .map(|(i, s)| s.unwrap_or_else(|| panic!("cell {i} never completed")))
        .collect()
}

/// Runs every cell of `cells` under `run`, fanned across up to `jobs`
/// worker threads, and returns results in specification order.
///
/// `jobs <= 1` executes the cells inline on the calling thread — no
/// threads are spawned, preserving the serial path byte for byte. With
/// more jobs, workers pull cells off a shared atomic cursor (so a slow
/// cell never blocks the others) and the aggregator restores
/// specification order regardless of which worker finished first.
pub fn run_sweep<C, R, F>(cells: &[(CellKey, C)], jobs: usize, run: F) -> SweepRun<R>
where
    C: Sync,
    R: Send,
    F: Fn(&CellKey, &C) -> R + Sync,
{
    let start = Instant::now();
    let jobs = jobs.max(1).min(cells.len().max(1));
    let timed = |key: &CellKey, cell: &C| {
        let t0 = Instant::now();
        let result = run(key, cell);
        (result, t0.elapsed())
    };
    let (results, walls): (Vec<R>, Vec<Duration>) = if jobs <= 1 {
        cells.iter().map(|(key, cell)| timed(key, cell)).unzip()
    } else {
        let cursor = AtomicUsize::new(0);
        let (tx, rx) = mpsc::channel::<(usize, R, Duration)>();
        std::thread::scope(|scope| {
            for _ in 0..jobs {
                let tx = tx.clone();
                let cursor = &cursor;
                let timed = &timed;
                scope.spawn(move || loop {
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    let Some((key, cell)) = cells.get(i) else {
                        break;
                    };
                    let (result, wall) = timed(key, cell);
                    if tx.send((i, result, wall)).is_err() {
                        break;
                    }
                });
            }
            drop(tx);
            merge_completions(cells.len(), rx.into_iter().map(|(i, r, w)| (i, (r, w))))
                .into_iter()
                .unzip()
        })
    };
    SweepRun {
        results: cells
            .iter()
            .map(|(key, _)| key.clone())
            .zip(results)
            .collect(),
        timings: cells
            .iter()
            .zip(&walls)
            .map(|((key, _), &wall)| CellTiming {
                label: key.label(),
                wall,
            })
            .collect(),
        jobs,
        wall: start.elapsed(),
    }
}

/// Builds one scheduler instance for one cell (called inside the worker
/// thread, so the scheduler itself never crosses threads).
pub type SchedulerFactory = Box<dyn Fn() -> Box<dyn WorkflowScheduler> + Send + Sync>;

/// One simulation cell: a workload, a cluster, a config, and a scheduler
/// factory. Cells are shared-nothing; the expensive workload is borrowed.
pub struct SimCell<'w> {
    workflows: &'w [WorkflowSpec],
    cluster: ClusterConfig,
    config: SimConfig,
    factory: SchedulerFactory,
}

impl fmt::Debug for SimCell<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SimCell")
            .field("workflows", &self.workflows.len())
            .field("cluster", &self.cluster)
            .finish_non_exhaustive()
    }
}

impl<'w> SimCell<'w> {
    /// A cell with an explicit scheduler factory (for schedulers the
    /// [`SchedulerKind`] enum cannot express, e.g. WOHA with padding).
    pub fn new(
        workflows: &'w [WorkflowSpec],
        cluster: ClusterConfig,
        config: SimConfig,
        factory: SchedulerFactory,
    ) -> Self {
        SimCell {
            workflows,
            cluster,
            config,
            factory,
        }
    }

    /// A cell running one of the stock [`SchedulerKind`]s.
    pub fn for_kind(
        kind: SchedulerKind,
        workflows: &'w [WorkflowSpec],
        cluster: ClusterConfig,
        config: SimConfig,
    ) -> Self {
        let total = cluster.total_slots(SlotKind::Map) + cluster.total_slots(SlotKind::Reduce);
        SimCell::new(
            workflows,
            cluster,
            config,
            Box::new(move || kind.build(total)),
        )
    }

    fn run(&self) -> SimReport {
        let mut scheduler = (self.factory)();
        run_simulation(
            self.workflows,
            scheduler.as_mut(),
            &self.cluster,
            &self.config,
        )
    }
}

/// A scenario grid: [`SimCell`]s keyed by [`CellKey`], executed by
/// [`SimSweep::run`]. This is the `SweepSpec` every ported bench binary
/// builds instead of hand-rolling nested scenario loops.
#[derive(Debug, Default)]
pub struct SimSweep<'w> {
    cells: Vec<(CellKey, SimCell<'w>)>,
}

impl<'w> SimSweep<'w> {
    /// An empty grid.
    pub fn new() -> Self {
        SimSweep { cells: Vec::new() }
    }

    /// Number of cells.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// Whether the grid has no cells.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Adds one cell.
    pub fn push(&mut self, key: CellKey, cell: SimCell<'w>) -> &mut Self {
        self.cells.push((key, cell));
        self
    }

    /// Adds one cell per scheduler kind, keyed `base + scheduler=<kind>`,
    /// all sharing the same workload, cluster, and config.
    pub fn push_kinds(
        &mut self,
        base: &CellKey,
        kinds: &[SchedulerKind],
        workflows: &'w [WorkflowSpec],
        cluster: &ClusterConfig,
        config: &SimConfig,
    ) -> &mut Self {
        for &kind in kinds {
            self.push(
                base.clone().with("scheduler", kind),
                SimCell::for_kind(kind, workflows, cluster.clone(), config.clone()),
            );
        }
        self
    }

    /// Runs the grid across up to `jobs` worker threads. Results come
    /// back in the order the cells were pushed, whatever the completion
    /// order was.
    pub fn run(&self, jobs: usize) -> SimSweepRun {
        let run = run_sweep(&self.cells, jobs, |_, cell: &SimCell| cell.run());
        SimSweepRun {
            cells: run.results,
            timings: run.timings,
            jobs: run.jobs,
            wall: run.wall,
        }
    }
}

/// The aggregated reports of one [`SimSweep::run`], in specification
/// order.
#[derive(Debug, Clone)]
pub struct SimSweepRun {
    /// `(key, report)` per cell, in specification order.
    pub cells: Vec<(CellKey, SimReport)>,
    /// Per-cell wall times, in the same order.
    pub timings: Vec<CellTiming>,
    /// Worker threads actually used.
    pub jobs: usize,
    /// Wall-clock time of the whole sweep.
    pub wall: Duration,
}

impl SimSweepRun {
    /// The report of the first cell matching every `(axis, value)` pair.
    ///
    /// # Panics
    ///
    /// Panics if no cell matches.
    pub fn report(&self, selector: &[(&str, &str)]) -> &SimReport {
        &self
            .cells
            .iter()
            .find(|(key, _)| key.matches(selector))
            .unwrap_or_else(|| panic!("no cell matches {selector:?}"))
            .1
    }

    /// Splits the run back into per-cell reports, in specification order.
    pub fn into_reports(self) -> Vec<SimReport> {
        self.cells.into_iter().map(|(_, r)| r).collect()
    }

    /// The canonical aggregated JSON: every cell's key and report, wall
    /// clock normalized out — byte-identical for byte-identical scenario
    /// outcomes, regardless of `jobs`.
    pub fn canonical_json(&self) -> String {
        let cells: Vec<CanonicalCell> = self
            .cells
            .iter()
            .map(|(key, report)| CanonicalCell {
                cell: key.label(),
                report: canonical_report(report),
            })
            .collect();
        let mut json = serde_json::to_string_pretty(&cells).expect("reports serialize");
        json.push('\n');
        json
    }
}

#[derive(Serialize)]
struct CanonicalCell {
    cell: String,
    report: SimReport,
}

/// A copy of `report` with its one wall-clock field
/// ([`SimReport::scheduler_nanos`]) zeroed, so serialized output depends
/// only on the simulated outcome. (Report equality already ignores the
/// field; serialization must too before bytes can be compared.)
pub fn canonical_report(report: &SimReport) -> SimReport {
    let mut canonical = report.clone();
    canonical.scheduler_nanos = 0;
    canonical
}

/// Deterministic pretty JSON of one report, wall clock normalized out.
/// The golden-report regression corpus under `tests/golden/` stores
/// exactly this form.
pub fn canonical_report_json(report: &SimReport) -> String {
    let mut json =
        serde_json::to_string_pretty(&canonical_report(report)).expect("report serializes");
    json.push('\n');
    json
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenarios::{fig2_cluster, fig2_workflows};

    #[test]
    fn cell_key_labels_and_lookup() {
        let key = CellKey::new().with("mtbf", "8h").with("scheduler", "EDF");
        assert_eq!(key.label(), "mtbf=8h scheduler=EDF");
        assert_eq!(key.get("mtbf"), Some("8h"));
        assert_eq!(key.get("absent"), None);
        assert!(key.matches(&[("scheduler", "EDF")]));
        assert!(!key.matches(&[("scheduler", "FIFO")]));
        assert_eq!(key.to_string(), key.label());
    }

    #[test]
    fn parse_jobs_forms() {
        let args = |v: &[&str]| v.iter().map(|s| s.to_string()).collect::<Vec<_>>();
        assert_eq!(parse_jobs(args(&["--quick"])).unwrap(), None);
        assert_eq!(parse_jobs(args(&["--jobs", "4"])).unwrap(), Some(4));
        assert_eq!(parse_jobs(args(&["--jobs=7"])).unwrap(), Some(7));
        assert_eq!(
            parse_jobs(args(&["--jobs", "0"])).unwrap(),
            Some(available_jobs())
        );
        assert!(parse_jobs(args(&["--jobs"])).is_err());
        assert!(parse_jobs(args(&["--jobs", "x"])).is_err());
    }

    #[test]
    fn merge_restores_specification_order() {
        let shuffled = vec![(2usize, "c"), (0, "a"), (3, "d"), (1, "b")];
        assert_eq!(merge_completions(4, shuffled), vec!["a", "b", "c", "d"]);
    }

    #[test]
    #[should_panic(expected = "never completed")]
    fn merge_rejects_missing_cells() {
        merge_completions(2, vec![(0usize, 1)]);
    }

    #[test]
    #[should_panic(expected = "completed twice")]
    fn merge_rejects_duplicate_cells() {
        merge_completions(2, vec![(0usize, 1), (0, 2)]);
    }

    #[test]
    fn run_sweep_is_jobs_invariant() {
        let cells: Vec<(CellKey, u64)> =
            (0..13).map(|i| (CellKey::new().with("i", i), i)).collect();
        // A deliberately uneven workload so completion order differs from
        // specification order under parallel execution.
        let run = |_: &CellKey, &i: &u64| -> u64 {
            let spin = (13 - i) * 1_000;
            (0..spin).fold(i, |acc, x| acc.wrapping_add(x * x))
        };
        let serial = run_sweep(&cells, 1, run);
        for jobs in [2, 4, 8] {
            let parallel = run_sweep(&cells, jobs, run);
            assert_eq!(serial.results, parallel.results, "jobs={jobs}");
        }
        assert_eq!(serial.timings.len(), cells.len());
        assert!(serial.jobs == 1);
    }

    #[test]
    fn sim_sweep_matches_direct_runs_and_canonical_json_is_jobs_invariant() {
        let workflows = fig2_workflows();
        let cluster = fig2_cluster();
        let config = SimConfig::default();
        let kinds = [SchedulerKind::Fifo, SchedulerKind::Edf];
        let mut sweep = SimSweep::new();
        sweep.push_kinds(&CellKey::new(), &kinds, &workflows, &cluster, &config);
        let serial = sweep.run(1);
        assert_eq!(serial.cells.len(), 2);
        for (kind, (key, report)) in kinds.iter().zip(&serial.cells) {
            assert_eq!(key.get("scheduler"), Some(kind.to_string().as_str()));
            let direct = crate::runner::run_one(*kind, &workflows, &cluster, &config);
            assert_eq!(report, &direct, "{kind}");
        }
        let parallel = sweep.run(8);
        assert_eq!(parallel.canonical_json(), serial.canonical_json());
        assert_eq!(
            serial.report(&[("scheduler", "EDF")]),
            &crate::runner::run_one(SchedulerKind::Edf, &workflows, &cluster, &config)
        );
    }

    #[test]
    fn canonical_report_zeroes_wall_clock() {
        let workflows = fig2_workflows();
        let report = crate::runner::run_one(
            SchedulerKind::Fifo,
            &workflows,
            &fig2_cluster(),
            &SimConfig::default(),
        );
        let canon = canonical_report(&report);
        assert_eq!(canon.scheduler_nanos, 0);
        assert_eq!(canon, report, "equality ignores wall clock");
        assert!(canonical_report_json(&report).contains("\"scheduler_nanos\": 0"));
    }
}
