//! The six schedulers of the paper's evaluation, behind one factory enum.

use std::fmt;
use woha_core::{CapMode, PriorityPolicy, QueueStrategy, WohaConfig, WohaScheduler};
use woha_core::{EdfScheduler, FairScheduler, FifoScheduler};
use woha_sim::WorkflowScheduler;

/// One of the six schedulers compared throughout the evaluation
/// (Figs 8–12, 14–19).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SchedulerKind {
    /// Oozie + default Hadoop FIFO job scheduler.
    Fifo,
    /// Oozie + Facebook FairScheduler behaviour.
    Fair,
    /// Earliest Deadline First over workflows.
    Edf,
    /// WOHA with Highest Level First job priorities.
    WohaHlf,
    /// WOHA with Longest Path First job priorities.
    WohaLpf,
    /// WOHA with Maximum Parallelism First job priorities.
    WohaMpf,
}

impl SchedulerKind {
    /// All six, in the paper's legend order (Fig 11).
    pub const ALL: [SchedulerKind; 6] = [
        SchedulerKind::Edf,
        SchedulerKind::Fifo,
        SchedulerKind::Fair,
        SchedulerKind::WohaLpf,
        SchedulerKind::WohaHlf,
        SchedulerKind::WohaMpf,
    ];

    /// Only the WOHA variants.
    pub const WOHA: [SchedulerKind; 3] = [
        SchedulerKind::WohaLpf,
        SchedulerKind::WohaHlf,
        SchedulerKind::WohaMpf,
    ];

    /// Whether this is a WOHA variant (needs cluster capacity for plans).
    pub fn is_woha(self) -> bool {
        matches!(
            self,
            SchedulerKind::WohaHlf | SchedulerKind::WohaLpf | SchedulerKind::WohaMpf
        )
    }

    /// Instantiates the scheduler. `total_slots` is the cluster capacity
    /// WOHA clients use for plan generation (ignored by the baselines).
    pub fn build(self, total_slots: u32) -> Box<dyn WorkflowScheduler> {
        self.build_with(total_slots, CapMode::MinFeasible, QueueStrategy::Dsl)
    }

    /// Instantiates the scheduler with explicit WOHA knobs (cap mode and
    /// queue strategy), for ablations.
    pub fn build_with(
        self,
        total_slots: u32,
        cap_mode: CapMode,
        queue: QueueStrategy,
    ) -> Box<dyn WorkflowScheduler> {
        let woha = |policy| {
            Box::new(WohaScheduler::new(WohaConfig {
                policy,
                cap_mode,
                total_slots,
                queue,
                ..WohaConfig::new(policy, total_slots)
            })) as Box<dyn WorkflowScheduler>
        };
        match self {
            SchedulerKind::Fifo => Box::new(FifoScheduler::new()),
            SchedulerKind::Fair => Box::new(FairScheduler::new()),
            SchedulerKind::Edf => Box::new(EdfScheduler::new()),
            SchedulerKind::WohaHlf => woha(PriorityPolicy::Hlf),
            SchedulerKind::WohaLpf => woha(PriorityPolicy::Lpf),
            SchedulerKind::WohaMpf => woha(PriorityPolicy::Mpf),
        }
    }
}

impl fmt::Display for SchedulerKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SchedulerKind::Fifo => f.write_str("FIFO"),
            SchedulerKind::Fair => f.write_str("Fair"),
            SchedulerKind::Edf => f.write_str("EDF"),
            SchedulerKind::WohaHlf => f.write_str("WOHA-HLF"),
            SchedulerKind::WohaLpf => f.write_str("WOHA-LPF"),
            SchedulerKind::WohaMpf => f.write_str("WOHA-MPF"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_all_kinds_with_expected_names() {
        let names: Vec<String> = SchedulerKind::ALL
            .iter()
            .map(|k| k.build(100).name().to_string())
            .collect();
        assert_eq!(
            names,
            vec!["EDF", "FIFO", "Fair", "WOHA-LPF", "WOHA-HLF", "WOHA-MPF"]
        );
    }

    #[test]
    fn display_matches_paper_labels() {
        assert_eq!(SchedulerKind::WohaMpf.to_string(), "WOHA-MPF");
        assert_eq!(SchedulerKind::Fifo.to_string(), "FIFO");
    }

    #[test]
    fn woha_subset() {
        assert!(SchedulerKind::WOHA.iter().all(|k| k.is_woha()));
        assert!(!SchedulerKind::Fifo.is_woha());
    }
}
