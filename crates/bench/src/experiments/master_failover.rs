//! Master-failover recovery study: what a JobTracker crash costs each
//! scheduler, swept over checkpoint interval × crash time (no counterpart
//! figure in the paper, whose testbed never loses the master; this probes
//! the checkpoint/WAL recovery path the simulator models after Hadoop-1
//! JobTracker restart).
//!
//! Every cell injects one scripted master crash and compares against the
//! crash-free baseline of the same scheduler, so the tables report the
//! deadline misses and tardiness *attributable to the outage*.

use crate::schedulers::SchedulerKind;
use crate::sweep::{CellKey, SimSweep};
use crate::table::{ordered_unique, Table};
use woha_model::{SimDuration, SimTime, WorkflowSpec};
use woha_sim::{ClusterConfig, FaultConfig, MasterFaultConfig, SimConfig, SimReport};

/// The four schedulers the study compares (one WOHA variant suffices; the
/// three policies share the recovery path).
pub const SCHEDULERS: [SchedulerKind; 4] = [
    SchedulerKind::Edf,
    SchedulerKind::Fifo,
    SchedulerKind::Fair,
    SchedulerKind::WohaLpf,
];

/// One cell of the sweep.
#[derive(Debug, Clone)]
pub struct FailoverCell {
    /// Checkpoint-interval label ("1m", "5m", ...).
    pub interval: String,
    /// Crash-time label ("10m", "30m", ...).
    pub crash: String,
    /// Scheduler.
    pub scheduler: SchedulerKind,
    /// Full report (with `recovery` attached).
    pub report: SimReport,
}

/// The whole sweep plus the crash-free baselines used for deltas.
#[derive(Debug, Clone)]
pub struct FailoverSweep {
    /// All cells, grouped by interval then crash time in sweep order.
    pub cells: Vec<FailoverCell>,
    /// Crash-free baseline report per scheduler.
    pub baselines: Vec<(SchedulerKind, SimReport)>,
    /// Number of workflows in the workload.
    pub workflow_count: usize,
}

/// Runs the sweep: the same workload and cluster under every
/// `(checkpoint interval, crash time, scheduler)` triple, with one
/// scripted master crash per run and the given restart time. `wal`
/// selects lossless recovery (replay to the crash instant) or
/// checkpoint-only recovery (everything since the last checkpoint is
/// lost and redone). A crash-free run per scheduler provides the
/// baseline for the delta tables. The baselines and the whole grid share
/// one worker pool of up to `jobs` threads; results are identical for
/// any `jobs`.
#[allow(clippy::too_many_arguments)]
pub fn run_failover_sweep(
    workflows: &[WorkflowSpec],
    cluster: &ClusterConfig,
    intervals: &[(String, SimDuration)],
    crash_times: &[(String, SimTime)],
    mttr: SimDuration,
    wal: bool,
    config: &SimConfig,
    jobs: usize,
) -> FailoverSweep {
    let mut sweep = SimSweep::new();
    sweep.push_kinds(
        &CellKey::new().with("crash", "none"),
        &SCHEDULERS,
        workflows,
        cluster,
        config,
    );
    for (interval_label, interval) in intervals {
        for (crash_label, crash) in crash_times {
            let faults = FaultConfig {
                master: MasterFaultConfig {
                    mtbf: None,
                    mttr,
                    checkpoint_interval: *interval,
                    wal,
                    scripted: vec![*crash],
                },
                ..cluster.faults().clone()
            };
            let faulty = cluster.clone().with_faults(faults);
            sweep.push_kinds(
                &CellKey::new()
                    .with("ckpt", interval_label)
                    .with("crash", crash_label),
                &SCHEDULERS,
                workflows,
                &faulty,
                config,
            );
        }
    }
    let mut reports = sweep.run(jobs).into_reports().into_iter();
    let baselines = SCHEDULERS
        .iter()
        .map(|&kind| (kind, reports.next().expect("baseline cell")))
        .collect();
    let coords = intervals.iter().flat_map(|(interval, _)| {
        crash_times.iter().flat_map(move |(crash, _)| {
            SCHEDULERS
                .iter()
                .map(move |&kind| (interval.clone(), crash.clone(), kind))
        })
    });
    FailoverSweep {
        cells: coords
            .zip(reports)
            .map(|((interval, crash, scheduler), report)| FailoverCell {
                interval,
                crash,
                scheduler,
                report,
            })
            .collect(),
        baselines,
        workflow_count: workflows.len(),
    }
}

impl FailoverSweep {
    /// The report of one cell.
    pub fn report(&self, interval: &str, crash: &str, scheduler: SchedulerKind) -> &SimReport {
        &self
            .cells
            .iter()
            .find(|c| c.interval == interval && c.crash == crash && c.scheduler == scheduler)
            .expect("cell exists")
            .report
    }

    /// The crash-free baseline of one scheduler.
    pub fn baseline(&self, scheduler: SchedulerKind) -> &SimReport {
        &self
            .baselines
            .iter()
            .find(|(k, _)| *k == scheduler)
            .expect("baseline exists")
            .1
    }

    /// One row per `(scheduler, interval)`, one column per crash time.
    fn metric_table(&self, metric: impl Fn(&SimReport, &SimReport) -> String) -> Table {
        let intervals = ordered_unique(self.cells.iter().map(|c| c.interval.clone()));
        let crashes = ordered_unique(self.cells.iter().map(|c| c.crash.clone()));
        let mut columns = vec!["scheduler @ ckpt".to_string()];
        columns.extend(crashes.iter().map(|c| format!("crash {c}")));
        let mut t = Table::new(columns);
        for kind in SCHEDULERS {
            for interval in &intervals {
                let mut row = vec![format!("{kind} @ {interval}")];
                for crash in &crashes {
                    row.push(metric(
                        self.report(interval, crash, kind),
                        self.baseline(kind),
                    ));
                }
                t.row(row);
            }
        }
        t
    }

    /// Deadline misses attributable to the outage: cell minus the
    /// crash-free baseline of the same scheduler.
    pub fn miss_delta_table(&self) -> Table {
        self.metric_table(|r, base| {
            format!(
                "{:+}",
                r.deadline_misses() as i64 - base.deadline_misses() as i64
            )
        })
    }

    /// Extra total tardiness (s) over the crash-free baseline.
    pub fn tardiness_delta_table(&self) -> Table {
        self.metric_table(|r, base| {
            format!(
                "{:+.0}",
                r.total_tardiness().as_secs_f64() - base.total_tardiness().as_secs_f64()
            )
        })
    }

    /// Recovery-subsystem counters per cell, as
    /// `readopted/requeued/orphaned/wal-replayed`.
    pub fn recovery_table(&self) -> Table {
        self.metric_table(|r, _| {
            let rec = r.recovery.as_ref().expect("master faults were enabled");
            format!(
                "{}/{}/{}/{}",
                rec.attempts_readopted,
                rec.attempts_requeued,
                rec.attempts_orphaned,
                rec.wal_records_replayed
            )
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenarios::{demo_cluster, fig11_workflows};

    #[test]
    fn master_crashes_only_hurt_and_counters_reconcile() {
        let workflows = fig11_workflows();
        let cluster = demo_cluster();
        let intervals = vec![
            ("1m".to_string(), SimDuration::from_mins(1)),
            ("10m".to_string(), SimDuration::from_mins(10)),
        ];
        let crashes = vec![("20m".to_string(), SimTime::from_mins(20))];
        let config = SimConfig {
            seed: 7,
            ..SimConfig::default()
        };
        for wal in [true, false] {
            let sweep = run_failover_sweep(
                &workflows,
                &cluster,
                &intervals,
                &crashes,
                SimDuration::from_mins(2),
                wal,
                &config,
                4,
            );
            assert_eq!(sweep.cells.len(), 2 * SCHEDULERS.len());
            for cell in &sweep.cells {
                assert!(cell.report.completed, "{} wal={wal}", cell.scheduler);
                let rec = cell.report.recovery.as_ref().expect("master mode");
                assert_eq!(rec.master_crashes, 1);
                if wal {
                    // Lossless recovery loses no attempts.
                    assert_eq!(rec.attempts_requeued + rec.attempts_orphaned, 0);
                }
                // An outage never helps a deadline.
                let base = sweep.baseline(cell.scheduler);
                assert!(
                    cell.report.deadline_misses() >= base.deadline_misses(),
                    "{} wal={wal}",
                    cell.scheduler
                );
                assert!(cell.report.total_tardiness() >= base.total_tardiness());
            }
            assert_eq!(
                sweep.miss_delta_table().len(),
                SCHEDULERS.len() * intervals.len()
            );
            assert_eq!(
                sweep.recovery_table().len(),
                SCHEDULERS.len() * intervals.len()
            );
        }
    }
}
