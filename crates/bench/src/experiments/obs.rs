//! The `obs_overhead` sweep: end-to-end wall-clock cost of the
//! observability layer (structured tracing + metrics registry), off versus
//! on, for each priority-index backend.
//!
//! This is the simulation-level companion of the `throughput_index`
//! microbenchmark: instead of isolating the priority index, it reruns the
//! Yahoo-trace workload through the full simulator and compares wall time
//! with observability disabled (the shipping default — the exact code path
//! every other experiment measures) against a run with both the
//! [`TraceSink`](woha_sim::TraceSink) and the metrics registry armed. The
//! disabled path is the baseline by construction: with the
//! `SimConfig::observability` block at its default, the driver executes the
//! pre-observability event loop (guarded by `Option` checks only) and its
//! `SimReport` is byte-identical to the pre-observability output (asserted
//! by the `end_to_end` tests), so any regression would show up directly in
//! the `off` column.

use crate::experiments::throughput::INDEX_BACKENDS;
use crate::scenarios::{demo_cluster, fig11_workflows, yahoo_workload, YahooScenario};
use crate::schedulers::SchedulerKind;
use crate::table::Table;
use serde::{Deserialize, Serialize};
use std::time::Instant;
use woha_core::CapMode;
use woha_model::{SimDuration, SlotKind, WorkflowSpec};
use woha_sim::{
    run_simulation, try_run_simulation_observed, ClusterConfig, ObservabilityConfig, SimConfig,
};

/// Overhead bound the enabled path is held to, as a percentage of the
/// disabled path's wall time. Tracing buffers one in-memory record per
/// decision-loop event and the registry does a few counter increments and
/// histogram bucket scans per heartbeat, so the enabled path should stay
/// well under this; the bin prints PASS/WARN against it rather than
/// failing, because CI wall-clock noise is not a correctness signal.
pub const OVERHEAD_BOUND_PCT: f64 = 50.0;

/// One `(backend, off/on)` comparison of the `obs_overhead` sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ObsOverheadRecord {
    /// Priority-index backend label ("dsl", "btree", "pheap").
    pub backend: String,
    /// Best-of-`runs` wall time with observability fully off, in ms.
    pub off_wall_ms: f64,
    /// Best-of-`runs` wall time with trace + metrics on, in ms.
    pub on_wall_ms: f64,
    /// `(on - off) / off`, as a percentage (negative = within noise).
    pub overhead_pct: f64,
    /// Trace records captured by the enabled run.
    pub trace_records: u64,
    /// Scheduler decisions timed into the decision-seconds histogram.
    pub decisions_observed: u64,
}

/// The full `obs_overhead` report written to `BENCH_obs.json`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ObsOverheadReport {
    /// Experiment name (always "obs_overhead").
    pub experiment: String,
    /// Whether this was the `--quick` CI sweep.
    pub quick: bool,
    /// Wall-clock repetitions per point (best-of is reported).
    pub runs: u32,
    /// Backend labels swept, in sweep order.
    pub backends: Vec<String>,
    /// Stated overhead bound for the enabled path, percent.
    pub overhead_bound_pct: f64,
    /// Per-backend measurements.
    pub points: Vec<ObsOverheadRecord>,
}

fn sweep_scenario(quick: bool) -> (Vec<WorkflowSpec>, ClusterConfig) {
    if quick {
        (fig11_workflows(), demo_cluster())
    } else {
        let workload = yahoo_workload(&YahooScenario::default());
        (
            woha_trace::drain(&mut workload.into_source()),
            ClusterConfig::with_totals(240, 240),
        )
    }
}

fn observed_config() -> ObservabilityConfig {
    ObservabilityConfig {
        trace: true,
        metrics: true,
        sample_interval: Some(SimDuration::from_secs(30)),
        ..ObservabilityConfig::default()
    }
}

/// Runs the `obs_overhead` sweep: each index backend, observability off
/// then on, `runs` repetitions each (best-of-runs wall time reported).
pub fn run_obs_overhead(quick: bool, runs: u32) -> ObsOverheadReport {
    let (workflows, cluster) = sweep_scenario(quick);
    let total = cluster.total_slots(SlotKind::Map) + cluster.total_slots(SlotKind::Reduce);
    let base = SimConfig::default();
    let observed = SimConfig {
        observability: observed_config(),
        ..SimConfig::default()
    };

    let mut points = Vec::new();
    for strategy in INDEX_BACKENDS {
        let build = || SchedulerKind::WohaLpf.build_with(total, CapMode::MinFeasible, strategy);

        let mut off_wall_ms = f64::INFINITY;
        for _ in 0..runs {
            let mut s = build();
            let start = Instant::now();
            let report = run_simulation(&workflows, s.as_mut(), &cluster, &base);
            off_wall_ms = off_wall_ms.min(start.elapsed().as_secs_f64() * 1e3);
            assert!(report.completed, "off-path run must complete");
        }

        let mut on_wall_ms = f64::INFINITY;
        let mut trace_records = 0u64;
        let mut decisions_observed = 0u64;
        for _ in 0..runs {
            let mut s = build();
            let start = Instant::now();
            let (report, obs) =
                try_run_simulation_observed(&workflows, s.as_mut(), &cluster, &observed)
                    .expect("valid observed config");
            on_wall_ms = on_wall_ms.min(start.elapsed().as_secs_f64() * 1e3);
            assert!(report.completed, "on-path run must complete");
            trace_records = obs.trace.len() as u64;
            decisions_observed = obs
                .metrics
                .as_ref()
                .map_or(0, |m| m.decision_seconds.count());
        }

        points.push(ObsOverheadRecord {
            backend: strategy.label().to_string(),
            off_wall_ms,
            on_wall_ms,
            overhead_pct: (on_wall_ms - off_wall_ms) / off_wall_ms * 100.0,
            trace_records,
            decisions_observed,
        });
    }

    ObsOverheadReport {
        experiment: "obs_overhead".to_string(),
        quick,
        runs,
        backends: INDEX_BACKENDS
            .iter()
            .map(|s| s.label().to_string())
            .collect(),
        overhead_bound_pct: OVERHEAD_BOUND_PCT,
        points,
    }
}

/// Renders the `obs_overhead` report as a text table: one row per backend.
pub fn obs_overhead_table(report: &ObsOverheadReport) -> Table {
    let mut t = Table::new(vec![
        "backend",
        "off (ms)",
        "on (ms)",
        "overhead (%)",
        "trace records",
        "decisions timed",
    ]);
    for p in &report.points {
        t.row(vec![
            p.backend.clone(),
            format!("{:.1}", p.off_wall_ms),
            format!("{:.1}", p.on_wall_ms),
            format!("{:+.1}", p.overhead_pct),
            p.trace_records.to_string(),
            p.decisions_observed.to_string(),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_sweep_reports_every_backend() {
        let report = run_obs_overhead(true, 1);
        assert_eq!(report.experiment, "obs_overhead");
        assert_eq!(report.backends, vec!["dsl", "btree", "pheap"]);
        assert_eq!(report.points.len(), 3);
        for p in &report.points {
            assert!(p.off_wall_ms > 0.0 && p.on_wall_ms > 0.0, "{p:?}");
            assert!(p.trace_records > 0, "enabled run must capture a trace");
            assert!(p.decisions_observed > 0, "decision histogram must fill");
        }
        let json = serde_json::to_string_pretty(&report).expect("serialize");
        let back: ObsOverheadReport = serde_json::from_str(&json).expect("deserialize");
        assert_eq!(back, report);
        let text = obs_overhead_table(&report).render();
        assert!(text.contains("overhead"), "{text}");
    }
}
