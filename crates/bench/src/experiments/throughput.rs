//! Fig 13(a): scheduler throughput (AssignTask calls per second) versus
//! workflow queue length, for the Double Skip List, the BST alternative,
//! and the naive recompute-and-sort scheduler.
//!
//! This is a microbenchmark of the master-side ordering machinery in
//! isolation, exactly as the paper measures it: `n_w` workflows queue with
//! synthetic progress requirement lists; each AssignTask invocation walks
//! the due ct-list heads, picks the top-priority workflow, advances its
//! true progress, and re-inserts it.

use crate::table::Table;
use std::time::{Duration, Instant};
use woha_core::index::{BstIndex, DslIndex, WorkflowIndex};
use woha_core::plan::{ProgressRequirement, SchedulingPlan};
use woha_core::priority::PriorityPolicy;
use woha_core::progress::WorkflowProgress;
use woha_core::QueueStrategy;
use woha_model::{SimDuration, SimTime, WorkflowId};

/// A standalone Algorithm-2 driver over synthetic workflows, used to
/// measure queue-structure throughput without a cluster simulation.
#[derive(Debug)]
pub struct QueueHarness {
    records: Vec<WorkflowProgress>,
    index: Option<Box<dyn WorkflowIndex + Send>>,
    strategy: QueueStrategy,
    now: SimTime,
    /// Virtual time advanced per AssignTask call, driving ct-list churn.
    tick: SimDuration,
}

/// Builds a synthetic plan with `entries` requirement changes spread over
/// `span`.
fn synthetic_plan(entries: usize, span: SimDuration, tasks_per_entry: u64) -> SchedulingPlan {
    let requirements: Vec<ProgressRequirement> = (0..entries)
        .map(|i| ProgressRequirement {
            ttd: SimDuration::from_millis(
                span.as_millis() - span.as_millis() * i as u64 / entries as u64,
            ),
            cumulative: (i as u64 + 1) * tasks_per_entry,
        })
        .collect();
    SchedulingPlan::new(
        PriorityPolicy::Hlf,
        8,
        vec![],
        requirements,
        span,
        entries as u64 * tasks_per_entry,
    )
}

impl QueueHarness {
    /// Creates a harness with `queue_len` synthetic workflows. Deadlines
    /// and plan spans are staggered so requirement changes keep firing as
    /// virtual time advances (the regime the ct list exists for).
    pub fn new(strategy: QueueStrategy, queue_len: usize) -> Self {
        let mut index: Option<Box<dyn WorkflowIndex + Send>> = match strategy {
            QueueStrategy::Dsl => Some(Box::new(DslIndex::new())),
            QueueStrategy::Bst => Some(Box::new(BstIndex::new())),
            QueueStrategy::Naive => None,
        };
        let mut records = Vec::with_capacity(queue_len);
        for i in 0..queue_len {
            let id = WorkflowId::new(i as u64);
            // Plans with ~30 entries over ~30 minutes; deadlines staggered
            // across an hour so the head of the ct list keeps changing.
            let span = SimDuration::from_secs(1_200 + (i as u64 % 600));
            let plan = synthetic_plan(30, span, 50_000);
            let deadline = SimTime::from_secs(2_000 + (i as u64 * 7) % 3_600);
            let record = WorkflowProgress::new(id, plan, deadline, SimTime::ZERO);
            if let Some(index) = index.as_mut() {
                index.insert(id, record.next_change(), record.lag(), deadline);
            }
            records.push(record);
        }
        QueueHarness {
            records,
            index,
            strategy,
            now: SimTime::ZERO,
            tick: SimDuration::from_millis(1),
        }
    }

    /// Number of queued workflows.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// One AssignTask invocation: advance virtual time, refresh due
    /// workflows, pick the top-priority workflow, account one scheduled
    /// task. Returns the chosen workflow.
    pub fn assign_task(&mut self) -> WorkflowId {
        self.now = self.now.saturating_add(self.tick);
        let now = self.now;
        match self.strategy {
            QueueStrategy::Naive => {
                // Recompute every workflow's priority and take the max —
                // the paper's naive strawman (sorting is what the paper's
                // naive does; a max-scan is already its lower bound).
                let mut order: Vec<(i64, SimTime, usize)> = self
                    .records
                    .iter_mut()
                    .enumerate()
                    .map(|(i, r)| {
                        r.catch_up(now);
                        (r.lag(), r.deadline(), i)
                    })
                    .collect();
                order.sort_by(|a, b| {
                    b.0.cmp(&a.0)
                        .then_with(|| a.1.cmp(&b.1))
                        .then_with(|| a.2.cmp(&b.2))
                });
                let best = order[0].2;
                self.records[best].on_task_assigned();
                self.records[best].id()
            }
            QueueStrategy::Dsl | QueueStrategy::Bst => {
                let index = self.index.as_mut().expect("indexed strategy");
                // Algorithm 2 lines 4-19.
                while let Some((t, wf)) = index.min_ct() {
                    if t > now {
                        break;
                    }
                    let record = &mut self.records[wf.as_u64() as usize];
                    let (old_ct, old_lag) = (record.next_change(), record.lag());
                    record.catch_up(now);
                    index.update(
                        wf,
                        old_ct,
                        old_lag,
                        record.next_change(),
                        record.lag(),
                        record.deadline(),
                    );
                }
                // Lines 20-23.
                let (_, wf) = index.max_priority().expect("non-empty queue");
                let record = &mut self.records[wf.as_u64() as usize];
                let (ct, old_lag) = (record.next_change(), record.lag());
                record.on_task_assigned();
                index.update(wf, ct, old_lag, ct, record.lag(), record.deadline());
                wf
            }
        }
    }
}

/// One Fig 13(a) measurement: calls per second at a queue length.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ThroughputPoint {
    /// Queue length (number of workflows).
    pub queue_len: usize,
    /// Strategy measured.
    pub strategy: QueueStrategy,
    /// AssignTask invocations per second of wall-clock time.
    pub calls_per_sec: f64,
}

/// Measures AssignTask throughput for `strategy` at `queue_len`, running
/// for at least `budget` wall-clock time.
pub fn measure_throughput(
    strategy: QueueStrategy,
    queue_len: usize,
    budget: Duration,
) -> ThroughputPoint {
    let mut harness = QueueHarness::new(strategy, queue_len);
    // Warm up.
    for _ in 0..10 {
        harness.assign_task();
    }
    let start = Instant::now();
    let mut calls = 0u64;
    while start.elapsed() < budget {
        // Batch to amortize the clock reads.
        for _ in 0..16 {
            harness.assign_task();
        }
        calls += 16;
    }
    let secs = start.elapsed().as_secs_f64();
    ThroughputPoint {
        queue_len,
        strategy,
        calls_per_sec: calls as f64 / secs,
    }
}

/// Runs the full Fig 13(a) sweep over the given queue lengths.
pub fn run_fig13a(queue_lens: &[usize], budget: Duration) -> Vec<ThroughputPoint> {
    let mut points = Vec::new();
    for &len in queue_lens {
        for strategy in QueueStrategy::ALL {
            points.push(measure_throughput(strategy, len, budget));
        }
    }
    points
}

/// Renders the Fig 13(a) table: one row per queue length, one column per
/// strategy.
pub fn fig13a_table(points: &[ThroughputPoint]) -> Table {
    let mut lens: Vec<usize> = points.iter().map(|p| p.queue_len).collect();
    lens.sort_unstable();
    lens.dedup();
    let mut t = Table::new(vec![
        "queue length",
        "DSL (calls/s)",
        "BST (calls/s)",
        "Naive (calls/s)",
    ]);
    for len in lens {
        let get = |s: QueueStrategy| {
            points
                .iter()
                .find(|p| p.queue_len == len && p.strategy == s)
                .map(|p| format!("{:.0}", p.calls_per_sec))
                .unwrap_or_default()
        };
        t.row(vec![
            len.to_string(),
            get(QueueStrategy::Dsl),
            get(QueueStrategy::Bst),
            get(QueueStrategy::Naive),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harness_runs_all_strategies() {
        for strategy in QueueStrategy::ALL {
            let mut h = QueueHarness::new(strategy, 50);
            assert_eq!(h.len(), 50);
            assert!(!h.is_empty());
            for _ in 0..200 {
                let wf = h.assign_task();
                assert!(wf.as_u64() < 50);
            }
        }
    }

    #[test]
    fn strategies_pick_the_same_workflows() {
        let mut dsl = QueueHarness::new(QueueStrategy::Dsl, 40);
        let mut bst = QueueHarness::new(QueueStrategy::Bst, 40);
        let mut naive = QueueHarness::new(QueueStrategy::Naive, 40);
        for step in 0..500 {
            let a = dsl.assign_task();
            let b = bst.assign_task();
            let c = naive.assign_task();
            assert_eq!(a, b, "step {step}");
            assert_eq!(a, c, "step {step}");
        }
    }

    #[test]
    fn throughput_measurement_is_positive() {
        let p = measure_throughput(QueueStrategy::Dsl, 100, Duration::from_millis(20));
        assert!(p.calls_per_sec > 1_000.0, "{p:?}");
    }

    #[test]
    #[ignore = "wall-clock benchmark; run explicitly with --ignored"]
    fn dsl_beats_naive_at_scale() {
        let budget = Duration::from_millis(200);
        let dsl = measure_throughput(QueueStrategy::Dsl, 10_000, budget);
        let naive = measure_throughput(QueueStrategy::Naive, 10_000, budget);
        assert!(
            dsl.calls_per_sec > naive.calls_per_sec * 10.0,
            "dsl {:.0} naive {:.0}",
            dsl.calls_per_sec,
            naive.calls_per_sec
        );
    }
}
