//! Fig 13(a): scheduler throughput (AssignTask calls per second) versus
//! workflow queue length, for the Double Skip List, the BST alternative,
//! and the naive recompute-and-sort scheduler.
//!
//! This is a microbenchmark of the master-side ordering machinery in
//! isolation, exactly as the paper measures it: `n_w` workflows queue with
//! synthetic progress requirement lists; each AssignTask invocation walks
//! the due ct-list heads, picks the top-priority workflow, advances its
//! true progress, and re-inserts it.

use crate::sweep::{run_sweep, CellKey};
use crate::table::Table;
use serde::{Deserialize, Serialize};
use std::time::{Duration, Instant};
use woha_core::index::PriorityIndex;
use woha_core::plan::{ProgressRequirement, SchedulingPlan};
use woha_core::priority::PriorityPolicy;
use woha_core::progress::WorkflowProgress;
use woha_core::QueueStrategy;
use woha_model::{SimDuration, SimTime, WorkflowId};

/// A standalone Algorithm-2 driver over synthetic workflows, used to
/// measure queue-structure throughput without a cluster simulation.
#[derive(Debug)]
pub struct QueueHarness {
    records: Vec<WorkflowProgress>,
    index: Option<Box<dyn PriorityIndex + Send>>,
    strategy: QueueStrategy,
    now: SimTime,
    /// Virtual time advanced per AssignTask call, driving ct-list churn.
    tick: SimDuration,
}

/// Builds a synthetic plan with `entries` requirement changes spread over
/// `span`.
fn synthetic_plan(entries: usize, span: SimDuration, tasks_per_entry: u64) -> SchedulingPlan {
    let requirements: Vec<ProgressRequirement> = (0..entries)
        .map(|i| ProgressRequirement {
            ttd: SimDuration::from_millis(
                span.as_millis() - span.as_millis() * i as u64 / entries as u64,
            ),
            cumulative: (i as u64 + 1) * tasks_per_entry,
        })
        .collect();
    SchedulingPlan::new(
        PriorityPolicy::Hlf,
        8,
        vec![],
        requirements,
        span,
        entries as u64 * tasks_per_entry,
    )
}

impl QueueHarness {
    /// Creates a harness with `queue_len` synthetic workflows. Deadlines
    /// and plan spans are staggered so requirement changes keep firing as
    /// virtual time advances (the regime the ct list exists for).
    pub fn new(strategy: QueueStrategy, queue_len: usize) -> Self {
        let mut index = strategy.build_index();
        let mut records = Vec::with_capacity(queue_len);
        for i in 0..queue_len {
            let id = WorkflowId::new(i as u64);
            // Plans with ~30 entries over ~30 minutes; deadlines staggered
            // across an hour so the head of the ct list keeps changing.
            let span = SimDuration::from_secs(1_200 + (i as u64 % 600));
            let plan = synthetic_plan(30, span, 50_000);
            let deadline = SimTime::from_secs(2_000 + (i as u64 * 7) % 3_600);
            let record = WorkflowProgress::new(id, plan, deadline, SimTime::ZERO);
            if let Some(index) = index.as_mut() {
                index.insert(id, record.next_change(), record.lag(), deadline);
            }
            records.push(record);
        }
        QueueHarness {
            records,
            index,
            strategy,
            now: SimTime::ZERO,
            tick: SimDuration::from_millis(1),
        }
    }

    /// Number of queued workflows.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// One AssignTask invocation: advance virtual time, refresh due
    /// workflows, pick the top-priority workflow, account one scheduled
    /// task. Returns the chosen workflow.
    pub fn assign_task(&mut self) -> WorkflowId {
        self.now = self.now.saturating_add(self.tick);
        let now = self.now;
        match self.strategy {
            QueueStrategy::Naive => {
                // Recompute every workflow's priority and take the max —
                // the paper's naive strawman (sorting is what the paper's
                // naive does; a max-scan is already its lower bound).
                let mut order: Vec<(i64, SimTime, usize)> = self
                    .records
                    .iter_mut()
                    .enumerate()
                    .map(|(i, r)| {
                        r.catch_up(now);
                        (r.lag(), r.deadline(), i)
                    })
                    .collect();
                order.sort_by(|a, b| {
                    b.0.cmp(&a.0)
                        .then_with(|| a.1.cmp(&b.1))
                        .then_with(|| a.2.cmp(&b.2))
                });
                let best = order[0].2;
                self.records[best].on_task_assigned();
                self.records[best].id()
            }
            _ => {
                let index = self.index.as_mut().expect("indexed strategy");
                // Algorithm 2 lines 4-19.
                while let Some((t, wf)) = index.min_ct() {
                    if t > now {
                        break;
                    }
                    let record = &mut self.records[wf.as_u64() as usize];
                    let (old_ct, old_lag) = (record.next_change(), record.lag());
                    record.catch_up(now);
                    index.update(
                        wf,
                        old_ct,
                        old_lag,
                        record.next_change(),
                        record.lag(),
                        record.deadline(),
                    );
                }
                // Lines 20-23.
                let (_, wf) = index.max_priority().expect("non-empty queue");
                let record = &mut self.records[wf.as_u64() as usize];
                let (ct, old_lag) = (record.next_change(), record.lag());
                record.on_task_assigned();
                index.update(wf, ct, old_lag, ct, record.lag(), record.deadline());
                wf
            }
        }
    }
}

/// One Fig 13(a) measurement: calls per second at a queue length.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ThroughputPoint {
    /// Queue length (number of workflows).
    pub queue_len: usize,
    /// Strategy measured.
    pub strategy: QueueStrategy,
    /// AssignTask invocations per second of wall-clock time.
    pub calls_per_sec: f64,
}

/// Measures AssignTask throughput for `strategy` at `queue_len`, running
/// for at least `budget` wall-clock time.
pub fn measure_throughput(
    strategy: QueueStrategy,
    queue_len: usize,
    budget: Duration,
) -> ThroughputPoint {
    let mut harness = QueueHarness::new(strategy, queue_len);
    // Warm up.
    for _ in 0..10 {
        harness.assign_task();
    }
    let start = Instant::now();
    let mut calls = 0u64;
    while start.elapsed() < budget {
        // Batch to amortize the clock reads.
        for _ in 0..16 {
            harness.assign_task();
        }
        calls += 16;
    }
    let secs = start.elapsed().as_secs_f64();
    ThroughputPoint {
        queue_len,
        strategy,
        calls_per_sec: calls as f64 / secs,
    }
}

/// Runs the full Fig 13(a) sweep over the given queue lengths, serially
/// (throughput cells measure wall clock, so concurrent cells on shared
/// cores would distort each other; pass `jobs > 1` to
/// [`run_fig13a_jobs`] only on idle many-core machines).
pub fn run_fig13a(queue_lens: &[usize], budget: Duration) -> Vec<ThroughputPoint> {
    run_fig13a_jobs(queue_lens, budget, 1)
}

/// [`run_fig13a`] with an explicit worker-thread budget. The *set* of
/// measured cells and their order are jobs-invariant; the measured
/// calls-per-second values are wall-clock and never byte-stable.
pub fn run_fig13a_jobs(
    queue_lens: &[usize],
    budget: Duration,
    jobs: usize,
) -> Vec<ThroughputPoint> {
    let cells: Vec<(CellKey, (QueueStrategy, usize))> = queue_lens
        .iter()
        .flat_map(|&len| {
            QueueStrategy::ALL.into_iter().map(move |strategy| {
                (
                    CellKey::new()
                        .with("len", len)
                        .with("queue", strategy.label()),
                    (strategy, len),
                )
            })
        })
        .collect();
    run_sweep(&cells, jobs, |_, &(strategy, len)| {
        measure_throughput(strategy, len, budget)
    })
    .results
    .into_iter()
    .map(|(_, p)| p)
    .collect()
}

/// Renders the Fig 13(a) table: one row per queue length, one column per
/// strategy.
pub fn fig13a_table(points: &[ThroughputPoint]) -> Table {
    let mut lens: Vec<usize> = points.iter().map(|p| p.queue_len).collect();
    lens.sort_unstable();
    lens.dedup();
    let mut t = Table::new(vec![
        "queue length",
        "DSL (calls/s)",
        "BST (calls/s)",
        "PHeap (calls/s)",
        "Naive (calls/s)",
    ]);
    for len in lens {
        let get = |s: QueueStrategy| {
            points
                .iter()
                .find(|p| p.queue_len == len && p.strategy == s)
                .map(|p| format!("{:.0}", p.calls_per_sec))
                .unwrap_or_default()
        };
        t.row(vec![
            len.to_string(),
            get(QueueStrategy::Dsl),
            get(QueueStrategy::Bst),
            get(QueueStrategy::Pairing),
            get(QueueStrategy::Naive),
        ]);
    }
    t
}

/// One measurement of the `throughput_index` sweep, in the machine-readable
/// `BENCH_throughput.json` format.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ThroughputRecord {
    /// Backend label ("dsl", "btree", "pheap").
    pub backend: String,
    /// Queue length (number of workflows).
    pub queue_len: u64,
    /// AssignTask invocations per second of wall-clock time.
    pub calls_per_sec: f64,
}

/// The full `throughput_index` report written to `BENCH_throughput.json`:
/// the repo's machine-readable perf baseline for the priority-index
/// backends.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ThroughputReport {
    /// Experiment name (always "throughput_index").
    pub experiment: String,
    /// Queue lengths swept.
    pub queue_lens: Vec<u64>,
    /// Backend labels swept, in sweep order.
    pub backends: Vec<String>,
    /// Per-(backend, queue length) measurements.
    pub points: Vec<ThroughputRecord>,
}

/// The indexed backends the `throughput_index` sweep compares. The naive
/// strawman is excluded: it is the Fig 13(a) baseline, not an index, and
/// is unusable at the sweep's 10⁵ queue lengths.
pub const INDEX_BACKENDS: [QueueStrategy; 3] = [
    QueueStrategy::Dsl,
    QueueStrategy::Bst,
    QueueStrategy::Pairing,
];

/// Runs the `throughput_index` sweep: backend × queue length, at least
/// `budget` wall-clock time per point, serially (see [`run_fig13a`] for
/// why timing sweeps default to one worker).
pub fn run_throughput_index(queue_lens: &[usize], budget: Duration) -> ThroughputReport {
    run_throughput_index_jobs(queue_lens, budget, 1)
}

/// [`run_throughput_index`] with an explicit worker-thread budget; the
/// cell set and order are jobs-invariant, the measured rates are not.
pub fn run_throughput_index_jobs(
    queue_lens: &[usize],
    budget: Duration,
    jobs: usize,
) -> ThroughputReport {
    let cells: Vec<(CellKey, (QueueStrategy, usize))> = queue_lens
        .iter()
        .flat_map(|&len| {
            INDEX_BACKENDS.into_iter().map(move |strategy| {
                (
                    CellKey::new()
                        .with("len", len)
                        .with("queue", strategy.label()),
                    (strategy, len),
                )
            })
        })
        .collect();
    let points = run_sweep(&cells, jobs, |_, &(strategy, len)| {
        let p = measure_throughput(strategy, len, budget);
        ThroughputRecord {
            backend: strategy.label().to_string(),
            queue_len: len as u64,
            calls_per_sec: p.calls_per_sec,
        }
    })
    .results
    .into_iter()
    .map(|(_, p)| p)
    .collect();
    ThroughputReport {
        experiment: "throughput_index".to_string(),
        queue_lens: queue_lens.iter().map(|&l| l as u64).collect(),
        backends: INDEX_BACKENDS
            .iter()
            .map(|s| s.label().to_string())
            .collect(),
        points,
    }
}

/// Renders the `throughput_index` report as a text table: one row per
/// queue length, one column per backend.
pub fn throughput_index_table(report: &ThroughputReport) -> Table {
    let mut headers = vec!["queue length".to_string()];
    headers.extend(report.backends.iter().map(|b| format!("{b} (calls/s)")));
    let mut t = Table::new(headers.iter().map(String::as_str).collect());
    for &len in &report.queue_lens {
        let mut row = vec![len.to_string()];
        for backend in &report.backends {
            row.push(
                report
                    .points
                    .iter()
                    .find(|p| p.queue_len == len && &p.backend == backend)
                    .map(|p| format!("{:.0}", p.calls_per_sec))
                    .unwrap_or_default(),
            );
        }
        t.row(row);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harness_runs_all_strategies() {
        for strategy in QueueStrategy::ALL {
            let mut h = QueueHarness::new(strategy, 50);
            assert_eq!(h.len(), 50);
            assert!(!h.is_empty());
            for _ in 0..200 {
                let wf = h.assign_task();
                assert!(wf.as_u64() < 50);
            }
        }
    }

    #[test]
    fn strategies_pick_the_same_workflows() {
        let mut dsl = QueueHarness::new(QueueStrategy::Dsl, 40);
        let mut bst = QueueHarness::new(QueueStrategy::Bst, 40);
        let mut pheap = QueueHarness::new(QueueStrategy::Pairing, 40);
        let mut naive = QueueHarness::new(QueueStrategy::Naive, 40);
        for step in 0..500 {
            let a = dsl.assign_task();
            let b = bst.assign_task();
            let p = pheap.assign_task();
            let c = naive.assign_task();
            assert_eq!(a, b, "step {step}");
            assert_eq!(a, p, "step {step}");
            assert_eq!(a, c, "step {step}");
        }
    }

    #[test]
    fn throughput_index_report_roundtrips() {
        let report = run_throughput_index(&[50, 100], Duration::from_millis(5));
        assert_eq!(report.experiment, "throughput_index");
        assert_eq!(report.backends, vec!["dsl", "btree", "pheap"]);
        assert_eq!(report.points.len(), 6);
        assert!(report.points.iter().all(|p| p.calls_per_sec > 0.0));
        let json = serde_json::to_string_pretty(&report).expect("serialize");
        let back: ThroughputReport = serde_json::from_str(&json).expect("deserialize");
        assert_eq!(back, report);
        let text = throughput_index_table(&report).render();
        assert!(text.contains("pheap"), "{text}");
    }

    #[test]
    fn throughput_measurement_is_positive() {
        let p = measure_throughput(QueueStrategy::Dsl, 100, Duration::from_millis(20));
        assert!(p.calls_per_sec > 1_000.0, "{p:?}");
    }

    #[test]
    #[ignore = "wall-clock benchmark; run explicitly with --ignored"]
    fn dsl_beats_naive_at_scale() {
        let budget = Duration::from_millis(200);
        let dsl = measure_throughput(QueueStrategy::Dsl, 10_000, budget);
        let naive = measure_throughput(QueueStrategy::Naive, 10_000, budget);
        assert!(
            dsl.calls_per_sec > naive.calls_per_sec * 10.0,
            "dsl {:.0} naive {:.0}",
            dsl.calls_per_sec,
            naive.calls_per_sec
        );
    }
}
