//! The `live_service` bench: sustained throughput and submit-to-plan
//! latency of the long-running scheduler service (DESIGN.md §13).
//!
//! A producer thread feeds tenant-prefixed workflows through a
//! [`ChannelSource`] at a fixed real-time cadence while the service runs
//! on a sped-up [`WallClock`](woha_sim::WallClock) with a
//! [`MultiTenantGate`] in front. A custom [`TraceSink`] captures the host
//! `Instant` at every `PlanGenerated` record, so each workflow's
//! admission-to-plan latency is measured end to end: channel, arrival
//! buffer, wall-clock pacing, admission, and Algorithm 1 planning. The
//! sweep scales the tenant count 1–8 to price the per-tenant accounting.

use crate::table::{fmt_f64, Table};
use serde::{Deserialize, Serialize};
use std::time::{Duration, Instant};
use woha_core::{MultiTenantGate, PriorityPolicy, TenantSpec, WohaConfig, WohaScheduler};
use woha_model::{JobSpec, SimDuration, SimTime, WorkflowBuilder, WorkflowSpec};
use woha_serve::{run_service, ClockMode, ServeConfig, ShutdownConfig};
use woha_sim::{ClusterConfig, SimConfig, TraceEvent, TraceRecord, TraceSink};
use woha_trace::ChannelSource;

/// One tenant-count measurement of the sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServiceRecord {
    /// Tenants configured on the gate (and interleaved by the producer).
    pub tenants: u32,
    /// Workflows the producer submitted.
    pub submitted: u64,
    /// Arrivals that reached the event loop (after the buffer).
    pub arrivals: u64,
    /// Arrivals shed by the backpressure buffer.
    pub shed: u64,
    /// Workflows turned away by the tenant gate.
    pub rejected: u64,
    /// Wall time of the whole service run, ms.
    pub wall_ms: f64,
    /// Sustained arrival rate over the run, workflows per real second.
    pub arrivals_per_sec: f64,
    /// Median submit-to-plan latency, ms (producer `send` to the host
    /// instant of the workflow's `PlanGenerated` trace record).
    pub plan_latency_p50_ms: f64,
    /// 99th-percentile submit-to-plan latency, ms.
    pub plan_latency_p99_ms: f64,
}

/// The full `live_service` report written to `BENCH_serve.json`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServiceReport {
    /// Experiment name (always "live_service").
    pub experiment: String,
    /// Whether this was the `--quick` CI sweep.
    pub quick: bool,
    /// Wall-clock speedup the service ran at.
    pub speedup: f64,
    /// Per-tenant-count measurements.
    pub points: Vec<ServiceRecord>,
}

/// Captures the host instant of every `PlanGenerated` record. Plans are
/// generated at workflow submission in arrival order, so the k-th instant
/// pairs with the k-th submitted workflow.
struct PlanInstantSink {
    plans: Vec<Instant>,
}

impl TraceSink for PlanInstantSink {
    fn record(&mut self, record: TraceRecord) {
        if let TraceEvent::PlanGenerated { .. } = record.event {
            self.plans.push(Instant::now());
        }
    }
}

/// A small two-job chain, namespaced under its tenant.
fn workflow(tenant: u32, seq: u64, submit: SimTime) -> WorkflowSpec {
    let name = format!("t{tenant}/wf-{seq}");
    let mut b = WorkflowBuilder::new(&name);
    let crunch = b.add_job(JobSpec::new(
        "crunch",
        6,
        2,
        SimDuration::from_secs(30),
        SimDuration::from_secs(60),
    ));
    let publish = b.add_job(JobSpec::new(
        "publish",
        2,
        1,
        SimDuration::from_secs(15),
        SimDuration::from_secs(30),
    ));
    b.add_dependency(crunch, publish);
    b.relative_deadline(SimDuration::from_mins(20));
    b.build().expect("static workflow shape is valid").reissued(
        name,
        submit,
        submit + SimDuration::from_mins(20),
    )
}

fn quantile_ms(sorted: &[Duration], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[idx].as_secs_f64() * 1e3
}

/// Runs one service point: `count` workflows round-robined over `tenants`
/// namespaces at `interarrival_real` cadence, wall clock at `speedup`.
fn run_point(tenants: u32, count: u64, speedup: f64, interarrival: SimDuration) -> ServiceRecord {
    // Sized so the sustained load (~360 slot-s per workflow every 20 sim
    // seconds = 18 slot-s/s) fits the 36 slots with headroom: the sweep
    // measures a healthy service, not aggregate-overload shedding.
    let cluster = ClusterConfig::uniform(12, 2, 1);
    let mut gate = MultiTenantGate::new(&cluster);
    for t in 0..tenants {
        // Caps generous enough that the sweep measures accounting cost,
        // not shedding: rejection rates belong to the tenant E2E tests.
        gate = gate.with_tenant(TenantSpec::new(format!("t{t}"), 64).with_weight(1.0));
    }

    let interarrival_real =
        Duration::from_secs_f64(interarrival.as_millis() as f64 / 1e3 / speedup);
    let (tx, source) = ChannelSource::pair();
    let producer = std::thread::spawn(move || {
        let mut send_at = Vec::with_capacity(count as usize);
        for i in 0..count {
            let submit = SimTime::ZERO + SimDuration::from_millis(interarrival.as_millis() * i);
            let spec = workflow((i % u64::from(tenants)) as u32, i, submit);
            send_at.push(Instant::now());
            if tx.send(spec).is_err() {
                break;
            }
            std::thread::sleep(interarrival_real);
        }
        send_at
    });

    let mut scheduler = WohaScheduler::new(WohaConfig::new(PriorityPolicy::Lpf, 36));
    let mut sink = PlanInstantSink { plans: Vec::new() };
    let config = SimConfig {
        observability: woha_sim::ObservabilityConfig {
            trace: true,
            ..woha_sim::ObservabilityConfig::default()
        },
        ..SimConfig::default()
    };
    let start = Instant::now();
    let outcome = run_service(
        source,
        None,
        &mut scheduler,
        &cluster,
        &config,
        Some(&mut gate),
        Some(&mut sink),
        &ServeConfig {
            clock: ClockMode::Wall {
                speedup,
                poll: Duration::from_millis(1),
            },
            buffer: 1024,
            shutdown: ShutdownConfig {
                // Backstop only: dropping the sender ends the feed.
                idle_timeout: Some(Duration::from_secs(5)),
                ..ShutdownConfig::default()
            },
            ..ServeConfig::default()
        },
    )
    .expect("valid service config");
    let wall = start.elapsed();
    let send_at = producer.join().expect("producer finishes");

    let mut latencies: Vec<Duration> = send_at
        .iter()
        .zip(&sink.plans)
        .map(|(sent, planned)| planned.saturating_duration_since(*sent))
        .collect();
    latencies.sort_unstable();

    let rejected = outcome
        .report
        .admission
        .as_ref()
        .map_or(0, |a| a.workflows_rejected);
    let wall_ms = wall.as_secs_f64() * 1e3;
    ServiceRecord {
        tenants,
        submitted: count,
        arrivals: outcome.arrivals,
        shed: outcome.shed,
        rejected,
        wall_ms,
        arrivals_per_sec: outcome.arrivals as f64 / wall.as_secs_f64(),
        plan_latency_p50_ms: quantile_ms(&latencies, 0.50),
        plan_latency_p99_ms: quantile_ms(&latencies, 0.99),
    }
}

/// Runs the `live_service` sweep across tenant counts.
pub fn run_live_service(quick: bool) -> ServiceReport {
    let speedup = 2000.0;
    let (tenant_counts, count) = if quick {
        (vec![1, 2], 30)
    } else {
        (vec![1, 2, 4, 8], 200)
    };
    let points = tenant_counts
        .into_iter()
        .map(|t| run_point(t, count, speedup, SimDuration::from_secs(20)))
        .collect();
    ServiceReport {
        experiment: "live_service".to_string(),
        quick,
        speedup,
        points,
    }
}

/// Renders the report as the human-readable sweep table.
pub fn service_table(report: &ServiceReport) -> Table {
    let mut t = Table::new(vec![
        "tenants",
        "submitted",
        "arrivals",
        "shed",
        "rejected",
        "wall ms",
        "arrivals/s",
        "plan p50 ms",
        "plan p99 ms",
    ]);
    for p in &report.points {
        t.row(vec![
            p.tenants.to_string(),
            p.submitted.to_string(),
            p.arrivals.to_string(),
            p.shed.to_string(),
            p.rejected.to_string(),
            fmt_f64(p.wall_ms),
            fmt_f64(p.arrivals_per_sec),
            fmt_f64(p.plan_latency_p50_ms),
            fmt_f64(p.plan_latency_p99_ms),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_sweep_shape() {
        let report = run_live_service(true);
        assert_eq!(report.experiment, "live_service");
        assert!(report.quick);
        assert_eq!(report.points.len(), 2);
        for p in &report.points {
            assert_eq!(p.submitted, 30);
            // Generous caps and a deep buffer: everything gets through.
            assert_eq!(p.arrivals, 30, "tenants={}", p.tenants);
            assert_eq!(p.shed, 0, "tenants={}", p.tenants);
            assert_eq!(p.rejected, 0, "tenants={}", p.tenants);
            assert!(p.wall_ms > 0.0);
            assert!(p.plan_latency_p50_ms <= p.plan_latency_p99_ms);
        }
        // Round-trips through JSON for BENCH_serve.json consumers.
        let json = serde_json::to_string(&report).unwrap();
        let back: ServiceReport = serde_json::from_str(&json).unwrap();
        assert_eq!(report, back);
    }
}
