//! The `ingest_throughput` sweep: what does it cost to feed N workflows
//! into the driver through a pre-materialized [`VecSource`] versus the
//! lazy [`GeneratorSource`]?
//!
//! The batch path materializes the whole workload before the first event
//! fires, so its resident footprint grows linearly with the workload; the
//! generator materializes one workflow per pull and stays O(1). This sweep
//! quantifies both sides at 10³–10⁵ workflows: wall time to pull the full
//! stream (including materialization, which is the batch path's whole
//! point of pain) and a deterministic peak-residency proxy instead of a
//! platform-dependent RSS read — the maximum number of workflow specs
//! simultaneously alive in the harness, plus their approximate byte size.

use crate::table::{fmt_f64, Table};
use serde::{Deserialize, Serialize};
use std::time::Instant;
use woha_model::{SimDuration, WorkflowSpec};
use woha_trace::{GeneratorSource, VecSource, WorkloadSource, YahooTraceConfig};

/// One `(source, size)` measurement of the sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IngestRecord {
    /// Source under test: `"vec"` or `"generator"`.
    pub source: String,
    /// Workflows pulled through the source.
    pub workflows: u64,
    /// Best-of-`runs` wall time to construct the source and drain it, ms.
    pub wall_ms: f64,
    /// Throughput in workflows per second, from the best run.
    pub workflows_per_sec: f64,
    /// Peak number of workflow specs simultaneously resident in the
    /// harness (the RSS proxy): the workload size for the batch path, O(1)
    /// for the generator.
    pub peak_resident_workflows: u64,
    /// Approximate bytes held at that peak (struct sizes + name lengths).
    pub approx_peak_bytes: u64,
}

/// The full `ingest_throughput` report written to `BENCH_ingest.json`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IngestReport {
    /// Experiment name (always "ingest_throughput").
    pub experiment: String,
    /// Whether this was the `--quick` CI sweep.
    pub quick: bool,
    /// Wall-clock repetitions per point (best-of is reported).
    pub runs: u32,
    /// Per-(source, size) measurements.
    pub points: Vec<IngestRecord>,
}

/// Workflow counts swept per mode. The full sweep covers the three decades
/// the streaming pipeline is built for; `--quick` keeps CI under a second.
fn sweep_sizes(quick: bool) -> Vec<usize> {
    if quick {
        vec![1_000]
    } else {
        vec![1_000, 10_000, 100_000]
    }
}

/// A deterministic generator stream shared by both sources: mean 90 s
/// interarrival and a 3x critical-path deadline stretch, in the range of
/// the Yahoo-trace scenario.
fn generator(count: usize) -> GeneratorSource {
    GeneratorSource::new(
        YahooTraceConfig::default(),
        42,
        count,
        SimDuration::from_secs(90),
        3.0,
    )
}

fn approx_spec_bytes(w: &WorkflowSpec) -> u64 {
    let jobs: u64 = w
        .jobs()
        .iter()
        .map(|j| (std::mem::size_of_val(j) + j.name().len()) as u64)
        .sum();
    (std::mem::size_of_val(w) + w.name().len()) as u64 + jobs
}

/// Drains `source`, dropping each workflow after touching it; returns
/// `(count, max bytes held by a single resident spec)`.
fn pull_streaming(source: &mut dyn WorkloadSource) -> (u64, u64) {
    let mut count = 0u64;
    let mut max_bytes = 0u64;
    while let Some(w) = source.next_workflow() {
        count += 1;
        max_bytes = max_bytes.max(approx_spec_bytes(std::hint::black_box(&w)));
    }
    (count, max_bytes)
}

/// Runs the `ingest_throughput` sweep: each size, the generator path (pull
/// one, drop it) versus the batch path (materialize everything into a
/// [`VecSource`], then pull it through), `runs` repetitions each.
pub fn run_ingest_throughput(quick: bool, runs: u32) -> IngestReport {
    let mut points = Vec::new();
    for size in sweep_sizes(quick) {
        // Generator: one workflow resident at a time.
        let mut best_ms = f64::INFINITY;
        let mut max_bytes = 0;
        for _ in 0..runs {
            let mut source = generator(size);
            let start = Instant::now();
            let (count, bytes) = pull_streaming(&mut source);
            let ms = start.elapsed().as_secs_f64() * 1e3;
            assert_eq!(count as usize, size, "generator yields the full count");
            best_ms = best_ms.min(ms);
            max_bytes = bytes;
        }
        points.push(record("generator", size, best_ms, 1, max_bytes));

        // Batch: the same stream materialized up front, as the deprecated
        // `into_workflows()` path (and every pre-streaming caller) did.
        let mut best_ms = f64::INFINITY;
        let mut peak_bytes = 0;
        for _ in 0..runs {
            let start = Instant::now();
            let all = woha_trace::drain(&mut generator(size));
            let bytes: u64 = all.iter().map(approx_spec_bytes).sum();
            let mut source = VecSource::new(all);
            let (count, _) = pull_streaming(&mut source);
            let ms = start.elapsed().as_secs_f64() * 1e3;
            assert_eq!(count as usize, size, "vec source yields the full count");
            best_ms = best_ms.min(ms);
            peak_bytes = bytes;
        }
        points.push(record("vec", size, best_ms, size as u64, peak_bytes));
    }
    IngestReport {
        experiment: "ingest_throughput".to_string(),
        quick,
        runs,
        points,
    }
}

fn record(source: &str, size: usize, wall_ms: f64, resident: u64, bytes: u64) -> IngestRecord {
    IngestRecord {
        source: source.to_string(),
        workflows: size as u64,
        wall_ms,
        workflows_per_sec: size as f64 / (wall_ms / 1e3),
        peak_resident_workflows: resident,
        approx_peak_bytes: bytes,
    }
}

/// Renders the report as the human-readable sweep table.
pub fn ingest_table(report: &IngestReport) -> Table {
    let mut t = Table::new(vec![
        "source",
        "workflows",
        "wall ms",
        "wf/s",
        "peak resident wf",
        "peak ~KiB",
    ]);
    for p in &report.points {
        t.row(vec![
            p.source.clone(),
            p.workflows.to_string(),
            fmt_f64(p.wall_ms),
            fmt_f64(p.workflows_per_sec),
            p.peak_resident_workflows.to_string(),
            fmt_f64(p.approx_peak_bytes as f64 / 1024.0),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_sweep_shape() {
        let report = run_ingest_throughput(true, 1);
        assert_eq!(report.experiment, "ingest_throughput");
        assert!(report.quick);
        // One size, two sources.
        assert_eq!(report.points.len(), 2);
        let gen = &report.points[0];
        let vec = &report.points[1];
        assert_eq!(gen.source, "generator");
        assert_eq!(vec.source, "vec");
        assert_eq!(gen.workflows, vec.workflows);
        // The proxy is the point: O(1) vs O(n) residency.
        assert_eq!(gen.peak_resident_workflows, 1);
        assert_eq!(vec.peak_resident_workflows, vec.workflows);
        assert!(gen.approx_peak_bytes < vec.approx_peak_bytes);
        assert!(gen.wall_ms > 0.0 && vec.wall_ms > 0.0);
        // Round-trips through JSON for BENCH_ingest.json consumers.
        let json = serde_json::to_string(&report).unwrap();
        let back: IngestReport = serde_json::from_str(&json).unwrap();
        assert_eq!(report, back);
    }

    #[test]
    fn table_has_a_row_per_point() {
        let report = run_ingest_throughput(true, 1);
        assert_eq!(ingest_table(&report).len(), report.points.len());
    }
}
