//! Plan-centric experiments: Fig 2 (the resource-cap example), Fig 3
//! (progress-requirement change intervals), and Fig 13(b) (plan sizes).

use crate::runner::run_one;
use crate::scenarios::{fig2_cluster, fig2_workflows};
use crate::schedulers::SchedulerKind;
use crate::table::{fmt_f64, Table};
use woha_core::{generate_reqs, CapMode, JobPriorities, PriorityPolicy, WohaConfig, WohaScheduler};
use woha_model::SimDuration;
use woha_sim::{run_simulation, SimConfig, SimReport};
use woha_trace::stats::DecadeHistogram;
use woha_trace::yahoo::{yahoo_workflows, YahooTraceConfig};
use woha_trace::Rng;

/// Result of the Fig 2 experiment: deadline outcomes of the three
/// workflows when plans are generated uncapped vs. resource-capped.
#[derive(Debug, Clone)]
pub struct Fig2Result {
    /// Report when every plan assumes the whole cluster (cap 6).
    pub uncapped: SimReport,
    /// Report with binary-searched minimal caps (cap 2 for W1/W2).
    pub capped: SimReport,
}

/// Runs the Fig 2 scenario under WOHA with and without the resource-cap
/// improvement.
pub fn run_fig2() -> Fig2Result {
    let workflows = fig2_workflows();
    let cluster = fig2_cluster();
    // Tight timing: sub-second heartbeats and no submitter latency, since
    // the whole scenario spans 10 seconds.
    let config = SimConfig {
        submit_latency: SimDuration::ZERO,
        ..SimConfig::default()
    };
    let cluster = cluster.with_heartbeat(SimDuration::from_millis(100));
    let total = 6;
    let run_with = |cap_mode: CapMode| {
        let mut sched = WohaScheduler::new(WohaConfig {
            cap_mode,
            plan_slack: 0.0,
            ..WohaConfig::new(PriorityPolicy::Hlf, total)
        });
        run_simulation(&workflows, &mut sched, &cluster, &config)
    };
    Fig2Result {
        uncapped: run_with(CapMode::Uncapped),
        capped: run_with(CapMode::MinFeasible),
    }
}

impl Fig2Result {
    /// Renders the side-by-side deadline table.
    pub fn table(&self) -> Table {
        let mut t = Table::new(vec![
            "workflow",
            "deadline(s)",
            "uncapped finish(s)",
            "capped finish(s)",
        ]);
        for (u, c) in self.uncapped.outcomes.iter().zip(&self.capped.outcomes) {
            let fin =
                |o: &woha_sim::WorkflowOutcome, censor| o.finished.unwrap_or(censor).as_secs_f64();
            t.row(vec![
                u.name.clone(),
                format!("{:.0}", u.deadline.as_secs_f64()),
                format!(
                    "{:.1}{}",
                    fin(u, self.uncapped.end_time),
                    if u.met_deadline() { "" } else { "*" }
                ),
                format!(
                    "{:.1}{}",
                    fin(c, self.capped.end_time),
                    if c.met_deadline() { "" } else { "*" }
                ),
            ]);
        }
        t
    }
}

/// Result of the Fig 3 experiment: the histogram of intervals between
/// consecutive progress-requirement changes over Yahoo-like plans.
#[derive(Debug, Clone)]
pub struct Fig3Result {
    /// Histogram over milliseconds, decade buckets.
    pub histogram: DecadeHistogram,
    /// Total number of intervals observed.
    pub intervals: u64,
}

/// Computes Fig 3: generate capped HLF plans for the Yahoo-like workload
/// (as the paper does) and histogram the requirement-change intervals.
pub fn run_fig3(seed: u64, total_slots: u32) -> Fig3Result {
    let flows = yahoo_workflows(&YahooTraceConfig::default(), &mut Rng::new(seed));
    let mut histogram = DecadeHistogram::new();
    let mut intervals = 0u64;
    for w in flows.iter().filter(|w| !w.is_single_job()) {
        let priorities = JobPriorities::compute(w, PriorityPolicy::Hlf);
        // The paper uses the resource-capped HLF plans; workflows carry no
        // deadline here, so probe a sweep of caps like the binary search
        // visits.
        for cap in [1u32, 2, 4, 8, 16, 32, total_slots] {
            let plan = generate_reqs(w, &priorities, cap);
            for gap in plan.change_intervals() {
                histogram.record(gap.as_millis() as f64);
                intervals += 1;
            }
        }
    }
    Fig3Result {
        histogram,
        intervals,
    }
}

impl Fig3Result {
    /// Renders the Fig 3 table: occurrence counts per `<10^k ms` bucket.
    pub fn table(&self) -> Table {
        let mut t = Table::new(vec!["interval bucket", "count", "fraction >= bucket floor"]);
        let max = self.histogram.max_decade().unwrap_or(0);
        for decade in 0..=max {
            t.row(vec![
                format!("[1e{decade}ms, 1e{}ms)", decade + 1),
                self.histogram.count_in_decade(decade).to_string(),
                fmt_f64(self.histogram.fraction_at_or_above_power(decade)),
            ]);
        }
        t
    }
}

/// One row of the Fig 13(b) data: a workflow's task count and its plan
/// size under each priority policy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PlanSizePoint {
    /// Total tasks in the workflow.
    pub tasks: u64,
    /// Encoded plan size in bytes, per policy `[MPF, LPF, HLF]`.
    pub bytes: [usize; 3],
}

/// Computes Fig 13(b): plan size versus workflow task count for the three
/// job prioritization policies, over Yahoo-like workflows spanning small
/// to >1400 tasks.
pub fn run_fig13b(seed: u64, cap: u32) -> Vec<PlanSizePoint> {
    let mut rng = Rng::new(seed);
    // Moderated job sizes, matching the workflows the paper's own Fig 13(b)
    // plots (its x-axis tops out near 1450 tasks).
    let config = YahooTraceConfig {
        map_count_max: 200,
        reduce_count_max: 40,
        ..YahooTraceConfig::default()
    };
    let mut flows = yahoo_workflows(&config, &mut rng);
    // Extend with some larger workflows so the x-axis reaches the paper's
    // 1400+ tasks.
    for extra in 0..10usize {
        let jobs = 10 + extra * 4;
        let mut job_rng = rng.fork(1_000 + extra as u64);
        let w = woha_trace::topology::random_layered(format!("big-{extra}"), jobs, &mut rng, |j| {
            config.sample_job(format!("big-{extra}-j{j}"), &mut job_rng)
        })
        .build()
        .expect("valid workflow");
        flows.push(w);
    }
    let mut points: Vec<PlanSizePoint> = flows
        .iter()
        .map(|w| {
            let bytes = [
                PriorityPolicy::Mpf,
                PriorityPolicy::Lpf,
                PriorityPolicy::Hlf,
            ]
            .map(|policy| {
                let pri = JobPriorities::compute(w, policy);
                generate_reqs(w, &pri, cap).encoded_size_bytes()
            });
            PlanSizePoint {
                tasks: w.total_tasks(),
                bytes,
            }
        })
        .collect();
    points.sort_by_key(|p| p.tasks);
    points
}

/// Renders the Fig 13(b) table.
pub fn fig13b_table(points: &[PlanSizePoint]) -> Table {
    let mut t = Table::new(vec![
        "tasks",
        "MPF plan (B)",
        "LPF plan (B)",
        "HLF plan (B)",
    ]);
    for p in points {
        t.row(vec![
            p.tasks.to_string(),
            p.bytes[0].to_string(),
            p.bytes[1].to_string(),
            p.bytes[2].to_string(),
        ]);
    }
    t
}

/// The Fig 2 scenario run under the ported baselines too, for context in
/// the `fig02` binary.
pub fn run_fig2_baselines() -> Vec<(SchedulerKind, SimReport)> {
    let workflows = fig2_workflows();
    let cluster = fig2_cluster().with_heartbeat(SimDuration::from_millis(100));
    let config = SimConfig {
        submit_latency: SimDuration::ZERO,
        ..SimConfig::default()
    };
    [SchedulerKind::Fifo, SchedulerKind::Fair, SchedulerKind::Edf]
        .into_iter()
        .map(|k| (k, run_one(k, &workflows, &cluster, &config)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig2_cap_improvement_meets_all_deadlines() {
        let r = run_fig2();
        // Uncapped plans: all three think they can start late; at least one
        // of W1/W2 misses its 9s deadline (the paper's Fig 2(a)).
        assert!(
            r.uncapped.deadline_misses() >= 1,
            "uncapped must miss: {:?}",
            r.uncapped.outcomes
        );
        // Capped plans: all three meet their deadlines (Fig 2(b)).
        assert_eq!(
            r.capped.deadline_misses(),
            0,
            "capped must meet all: {:?}",
            r.capped.outcomes
        );
    }

    #[test]
    fn fig3_intervals_are_mostly_long() {
        let r = run_fig3(42, 400);
        assert!(r.intervals > 500, "enough intervals: {}", r.intervals);
        // The paper: all intervals > 10 ms, >99% > 10 s. Our second-
        // granularity synthetic estimates put every interval at >= 1 s and
        // the large majority at >= 10 s (the exact tail mass depends on the
        // proprietary trace we cannot access).
        assert_eq!(r.histogram.count_below_power(3), 0, "{}", r.histogram);
        assert!(
            r.histogram.fraction_at_or_above_power(4) > 0.8,
            "{}",
            r.histogram
        );
    }

    #[test]
    fn fig13b_plans_stay_small() {
        let points = run_fig13b(11, 64);
        let max_tasks = points.iter().map(|p| p.tasks).max().unwrap();
        assert!(max_tasks > 1_200, "need big workflows, got {max_tasks}");
        for p in &points {
            for &b in &p.bytes {
                assert!(b < 7 * 1024, "{} tasks -> {} bytes", p.tasks, b);
            }
        }
        // Most plans are under 2 KB, as the paper reports.
        let small = points
            .iter()
            .filter(|p| p.bytes.iter().all(|&b| b < 2 * 1024))
            .count();
        assert!(small * 10 >= points.len() * 7, "{small}/{}", points.len());
    }
}
