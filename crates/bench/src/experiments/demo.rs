//! The synthetic-demo experiments: Fig 11 (workspans), Fig 12 (cluster
//! utilization under 3 recurrences), and Figs 14–19 (slot-allocation
//! timelines), all on the 32-slave cluster with three Fig-7 workflows.

use crate::runner::run_many_jobs;
use crate::scenarios::{demo_cluster, fig11_workflows, fig12_workflows};
use crate::schedulers::SchedulerKind;
use crate::table::{fmt_f64, fmt_secs, Table};
use woha_model::{SimDuration, SlotKind, WorkflowId};
use woha_sim::{SimConfig, SimReport};

/// Result of the Fig 11 run: per-scheduler workspans and deadline verdicts.
#[derive(Debug, Clone)]
pub struct Fig11Result {
    /// `(scheduler, [workspan of W-1..W-3], [met deadline?])`.
    pub rows: Vec<(SchedulerKind, Vec<SimDuration>, Vec<bool>)>,
    /// Relative deadlines of the three workflows, for reference.
    pub relative_deadlines: Vec<SimDuration>,
    /// Full reports (for utilization and the timeline figures).
    pub reports: Vec<(SchedulerKind, SimReport)>,
}

/// Runs the Fig 11 scenario under all six schedulers.
///
/// `track_timelines` additionally records the Fig 14–19 slot-allocation
/// series (costs memory; enable only when those figures are wanted).
pub fn run_fig11(track_timelines: bool) -> Fig11Result {
    run_fig11_jobs(track_timelines, SchedulerKind::ALL.len())
}

/// [`run_fig11`] with an explicit worker-thread budget; results are
/// identical for any `jobs`.
pub fn run_fig11_jobs(track_timelines: bool, jobs: usize) -> Fig11Result {
    let workflows = fig11_workflows();
    let cluster = demo_cluster();
    let config = SimConfig {
        track_timelines,
        sample_interval: SimDuration::from_secs(10),
        ..SimConfig::default()
    };
    let reports = run_many_jobs(&SchedulerKind::ALL, &workflows, &cluster, &config, jobs);
    let relative_deadlines = workflows.iter().map(|w| w.relative_deadline()).collect();
    let rows = reports
        .iter()
        .map(|(kind, report)| {
            let spans = report.workspans();
            let met = report
                .outcomes
                .iter()
                .map(|o| o.met_deadline())
                .collect::<Vec<_>>();
            (*kind, spans, met)
        })
        .collect();
    Fig11Result {
        rows,
        relative_deadlines,
        reports,
    }
}

impl Fig11Result {
    /// Renders the Fig 11 table: workspan (seconds) per workflow per
    /// scheduler, with `*` marking deadline misses.
    pub fn table(&self) -> Table {
        let mut t = Table::new(vec![
            "scheduler",
            "W-1 span(s)",
            "W-2 span(s)",
            "W-3 span(s)",
            "misses",
        ]);
        for (kind, spans, met) in &self.rows {
            let mut cells = vec![kind.to_string()];
            for (s, ok) in spans.iter().zip(met) {
                cells.push(format!("{}{}", fmt_secs(*s), if *ok { "" } else { "*" }));
            }
            cells.push(met.iter().filter(|&&ok| !ok).count().to_string());
            t.row(cells);
        }
        t
    }

    /// The report of one scheduler.
    pub fn report(&self, kind: SchedulerKind) -> &SimReport {
        &self
            .reports
            .iter()
            .find(|(k, _)| *k == kind)
            .expect("all schedulers ran")
            .1
    }
}

/// Result of the Fig 12 utilization run.
#[derive(Debug, Clone)]
pub struct Fig12Result {
    /// `(scheduler, overall utilization)`.
    pub rows: Vec<(SchedulerKind, f64)>,
}

/// Runs the Fig 12 experiment: the demo workload with 3 recurrences,
/// reporting overall cluster utilization per scheduler.
pub fn run_fig12() -> Fig12Result {
    run_fig12_jobs(SchedulerKind::ALL.len())
}

/// [`run_fig12`] with an explicit worker-thread budget; results are
/// identical for any `jobs`.
pub fn run_fig12_jobs(jobs: usize) -> Fig12Result {
    let workflows = fig12_workflows(3);
    let cluster = demo_cluster();
    let config = SimConfig::default();
    let reports = run_many_jobs(&SchedulerKind::ALL, &workflows, &cluster, &config, jobs);
    Fig12Result {
        rows: reports
            .iter()
            .map(|(kind, r)| (*kind, r.overall_utilization()))
            .collect(),
    }
}

impl Fig12Result {
    /// Renders the utilization table.
    pub fn table(&self) -> Table {
        let mut t = Table::new(vec!["scheduler", "utilization"]);
        for (kind, u) in &self.rows {
            t.row(vec![kind.to_string(), fmt_f64(*u)]);
        }
        t
    }
}

/// Renders one scheduler's Figs 14–19 panel: the per-workflow occupied
/// map and reduce slots over time, as two aligned text series.
pub fn timeline_table(report: &SimReport, kind: SlotKind) -> Table {
    let timelines = report
        .timelines
        .as_ref()
        .expect("run with track_timelines = true");
    let mut header = vec!["t(s)".to_string()];
    for o in &report.outcomes {
        header.push(o.name.clone());
    }
    header.push("total".to_string());
    let mut t = Table::new(header);
    let interval = timelines.interval();
    // Downsample to ~60 rows for readability.
    let samples = timelines.sample_count();
    let step = (samples / 60).max(1);
    for s in (0..samples).step_by(step) {
        let time_s = (interval * (s as u64)).as_secs();
        let mut cells = vec![time_s.to_string()];
        let mut total = 0u32;
        for (i, _) in report.outcomes.iter().enumerate() {
            let v = timelines.series(WorkflowId::new(i as u64), kind)[s];
            total += v;
            cells.push(v.to_string());
        }
        cells.push(total.to_string());
        t.row(cells);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig11_woha_meets_all_deadlines_baselines_do_not() {
        let result = run_fig11(false);
        for (kind, _, met) in &result.rows {
            let misses = met.iter().filter(|&&ok| !ok).count();
            if kind.is_woha() {
                assert_eq!(misses, 0, "{kind} must meet all three deadlines");
            }
        }
        // Fair is the worst performer in the paper; it must miss deadlines.
        let fair = result
            .rows
            .iter()
            .find(|(k, ..)| *k == SchedulerKind::Fair)
            .unwrap();
        assert!(fair.2.iter().any(|&ok| !ok), "Fair must miss a deadline");
        // EDF over-serves W-3 and starves W-1/W-2 (the paper's Fig 11).
        let edf = result
            .rows
            .iter()
            .find(|(k, ..)| *k == SchedulerKind::Edf)
            .unwrap();
        assert!(edf.2[2], "EDF must finish W-3 in time");
        assert!(!edf.2[0] || !edf.2[1], "EDF must miss W-1 or W-2");
        // FIFO finishes W-1 comfortably but creates huge tardiness on W-3.
        let fifo = result
            .rows
            .iter()
            .find(|(k, ..)| *k == SchedulerKind::Fifo)
            .unwrap();
        assert!(fifo.2[0], "FIFO must finish W-1 in time");
        assert!(!fifo.2[2], "FIFO must miss W-3");
    }

    #[test]
    fn fig11_table_has_six_rows() {
        let result = run_fig11(false);
        let t = result.table();
        assert_eq!(t.len(), 6);
        let text = t.render();
        assert!(text.contains("WOHA-LPF"));
    }
}
