//! Node-failure resilience study: the deadline-miss ratio and tardiness of
//! the schedulers as the per-node MTBF shrinks (no counterpart figure in
//! the paper, whose testbed never loses nodes; this probes how WOHA's
//! progress-based priorities and the baselines degrade when the simulator's
//! fault injector takes nodes away mid-flight).
//!
//! Two sweeps share the workload and fault schedules: the *reactive* sweep
//! compares the four schedulers with failure prediction off, and the
//! *proactive* sweep holds WOHA-LPF fixed and turns on the prediction
//! ladder — plan padding, then padding plus risk-aware placement — to
//! measure what anticipating failures buys over merely reacting to them.

use crate::schedulers::SchedulerKind;
use crate::sweep::{CellKey, SimCell, SimSweep};
use crate::table::{fmt_f64, ordered_unique, Table};
use serde::{Deserialize, Serialize};
use std::fmt;
use woha_core::{CapMode, PadConfig, PriorityPolicy, QueueStrategy, WohaConfig, WohaScheduler};
use woha_model::{SimDuration, SlotKind, WorkflowSpec};
use woha_sim::{
    ClusterConfig, FaultConfig, PredictionConfig, SimConfig, SimReport, WorkflowScheduler,
};

/// The four schedulers the study compares (one WOHA variant suffices; the
/// three policies share the fault-handling path).
pub const SCHEDULERS: [SchedulerKind; 4] = [
    SchedulerKind::Edf,
    SchedulerKind::Fifo,
    SchedulerKind::Fair,
    SchedulerKind::WohaLpf,
];

/// One MTBF point of the sweep: a label and the per-node mean time between
/// failures (`None` = fault-free baseline).
pub type MtbfPoint = (String, Option<SimDuration>);

/// The default sweep: fault-free down to a crash every 2 h per node.
pub fn default_mtbf_points() -> Vec<MtbfPoint> {
    let mut points = vec![("none".to_string(), None)];
    for hours in [16u64, 8, 4, 2] {
        points.push((
            format!("{hours}h"),
            Some(SimDuration::from_mins(hours * 60)),
        ));
    }
    points
}

/// One cell of the sweep.
#[derive(Debug, Clone)]
pub struct FailureCell {
    /// MTBF label ("none", "8h", ...).
    pub mtbf: String,
    /// Scheduler.
    pub scheduler: SchedulerKind,
    /// Full report.
    pub report: SimReport,
}

/// The whole sweep: every (MTBF, scheduler) pair.
#[derive(Debug, Clone)]
pub struct FailureSweep {
    /// All cells, grouped by MTBF in sweep order.
    pub cells: Vec<FailureCell>,
    /// Number of workflows in the workload.
    pub workflow_count: usize,
}

/// Runs the sweep: the same workload and cluster under every
/// `(MTBF point, scheduler)` pair, fanned over up to `jobs` worker
/// threads (the whole grid is one cell pool, so a slow faulty point never
/// idles the workers; `jobs = 1` is the serial path). Nodes repair after
/// an exponential downtime of mean `mttr`; `seed` drives jitter and the
/// fault streams, so each point is reproducible, all schedulers at one
/// point face the same crash schedule, and results are identical for any
/// `jobs`.
pub fn run_failure_sweep(
    workflows: &[WorkflowSpec],
    cluster: &ClusterConfig,
    points: &[MtbfPoint],
    mttr: SimDuration,
    config: &SimConfig,
    jobs: usize,
) -> FailureSweep {
    let mut sweep = SimSweep::new();
    for (label, mtbf) in points {
        let faulty = match mtbf {
            Some(mtbf) => cluster
                .clone()
                .with_faults(FaultConfig::with_mtbf(*mtbf, mttr)),
            None => cluster.clone(),
        };
        sweep.push_kinds(
            &CellKey::new().with("mtbf", label),
            &SCHEDULERS,
            workflows,
            &faulty,
            config,
        );
    }
    let reports = sweep.run(jobs).into_reports();
    let coords = points
        .iter()
        .flat_map(|(label, _)| SCHEDULERS.iter().map(move |&kind| (label.clone(), kind)));
    FailureSweep {
        cells: coords
            .zip(reports)
            .map(|((mtbf, scheduler), report)| FailureCell {
                mtbf,
                scheduler,
                report,
            })
            .collect(),
        workflow_count: workflows.len(),
    }
}

impl FailureSweep {
    /// The report of one cell.
    pub fn report(&self, mtbf: &str, scheduler: SchedulerKind) -> &SimReport {
        &self
            .cells
            .iter()
            .find(|c| c.mtbf == mtbf && c.scheduler == scheduler)
            .expect("cell exists")
            .report
    }

    fn metric_table(&self, metric: impl Fn(&SimReport) -> String) -> Table {
        let points = ordered_unique(self.cells.iter().map(|c| c.mtbf.clone()));
        let mut columns = vec!["scheduler".to_string()];
        columns.extend(points.iter().map(|p| format!("mtbf {p}")));
        let mut t = Table::new(columns);
        for kind in SCHEDULERS {
            let mut row = vec![kind.to_string()];
            for point in &points {
                row.push(metric(self.report(point, kind)));
            }
            t.row(row);
        }
        t
    }

    /// Deadline-miss ratio per (scheduler, MTBF).
    pub fn miss_ratio_table(&self) -> Table {
        self.metric_table(|r| fmt_f64(r.deadline_misses() as f64 / r.outcomes.len().max(1) as f64))
    }

    /// Total tardiness (s) per (scheduler, MTBF).
    pub fn tardiness_table(&self) -> Table {
        self.metric_table(|r| format!("{:.0}", r.total_tardiness().as_secs_f64()))
    }

    /// Fault-subsystem counters per (scheduler, MTBF): crashes seen before
    /// the run ended, tasks requeued, map outputs lost, and work thrown
    /// away, as `failures/requeued/maps-lost/lost-slot-s`.
    pub fn disruption_table(&self) -> Table {
        self.metric_table(|r| {
            format!(
                "{}/{}/{}/{:.0}",
                r.node_failures,
                r.tasks_requeued,
                r.map_outputs_lost,
                r.work_lost_slot_ms as f64 / 1000.0
            )
        })
    }
}

/// One rung of the proactive-response ladder the second sweep climbs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PredictionMode {
    /// Failure prediction off — the reactive baseline (identical to the
    /// reactive sweep's WOHA-LPF cell).
    Off,
    /// Propensity tracking plus proactive plan padding (`--pad-plans`).
    PadOnly,
    /// Padding plus risk-aware placement and preemptive speculation
    /// (`--risk-placement`).
    PadRisk,
}

impl PredictionMode {
    /// All three rungs, reactive first.
    pub const ALL: [PredictionMode; 3] = [
        PredictionMode::Off,
        PredictionMode::PadOnly,
        PredictionMode::PadRisk,
    ];

    /// Short label used in tables and `BENCH_failure.json`.
    pub fn label(self) -> &'static str {
        match self {
            PredictionMode::Off => "reactive",
            PredictionMode::PadOnly => "pad",
            PredictionMode::PadRisk => "pad+risk",
        }
    }
}

impl fmt::Display for PredictionMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// WOHA-LPF under `mode`: the same construction as
/// [`SchedulerKind::WohaLpf`] except for the padding knob, so mode
/// [`PredictionMode::Off`] reproduces the reactive sweep's WOHA-LPF cell
/// exactly.
fn build_proactive(
    total_slots: u32,
    mtbf: Option<SimDuration>,
    mode: PredictionMode,
) -> WohaScheduler {
    let padding = match mode {
        PredictionMode::Off => None,
        _ => mtbf.map(PadConfig::new),
    };
    let policy = PriorityPolicy::Lpf;
    WohaScheduler::new(WohaConfig {
        policy,
        cap_mode: CapMode::MinFeasible,
        total_slots,
        queue: QueueStrategy::Dsl,
        padding,
        ..WohaConfig::new(policy, total_slots)
    })
}

/// One cell of the proactive sweep.
#[derive(Debug, Clone)]
pub struct ProactiveCell {
    /// MTBF label ("none", "8h", ...).
    pub mtbf: String,
    /// Prediction mode.
    pub mode: PredictionMode,
    /// Full report.
    pub report: SimReport,
}

/// The proactive sweep: WOHA-LPF at every `(MTBF, prediction mode)` pair.
#[derive(Debug, Clone)]
pub struct ProactiveSweep {
    /// All cells, grouped by MTBF in sweep order.
    pub cells: Vec<ProactiveCell>,
    /// Number of workflows in the workload.
    pub workflow_count: usize,
}

/// Runs the proactive sweep: WOHA-LPF over every `(MTBF point, mode)`
/// pair, same fault schedules per point as [`run_failure_sweep`] given
/// the same cluster, MTTR, and seed. The whole grid fans over up to
/// `jobs` worker threads; results are identical for any `jobs`.
pub fn run_proactive_sweep(
    workflows: &[WorkflowSpec],
    cluster: &ClusterConfig,
    points: &[MtbfPoint],
    mttr: SimDuration,
    config: &SimConfig,
    jobs: usize,
) -> ProactiveSweep {
    let total = cluster.total_slots(SlotKind::Map) + cluster.total_slots(SlotKind::Reduce);
    let mut sweep = SimSweep::new();
    for (label, mtbf) in points {
        let faulty = match mtbf {
            Some(mtbf) => cluster
                .clone()
                .with_faults(FaultConfig::with_mtbf(*mtbf, mttr)),
            None => cluster.clone(),
        };
        for mode in PredictionMode::ALL {
            let run_config = SimConfig {
                prediction: (mode != PredictionMode::Off).then(|| PredictionConfig {
                    risk_placement: mode == PredictionMode::PadRisk,
                    ..PredictionConfig::default()
                }),
                ..config.clone()
            };
            let mtbf = *mtbf;
            sweep.push(
                CellKey::new().with("mtbf", label).with("mode", mode),
                SimCell::new(
                    workflows,
                    faulty.clone(),
                    run_config,
                    Box::new(move || {
                        let scheduler: Box<dyn WorkflowScheduler> =
                            Box::new(build_proactive(total, mtbf, mode));
                        scheduler
                    }),
                ),
            );
        }
    }
    let reports = sweep.run(jobs).into_reports();
    let coords = points
        .iter()
        .flat_map(|(label, _)| PredictionMode::ALL.iter().map(move |&m| (label.clone(), m)));
    ProactiveSweep {
        cells: coords
            .zip(reports)
            .map(|((mtbf, mode), report)| ProactiveCell { mtbf, mode, report })
            .collect(),
        workflow_count: workflows.len(),
    }
}

impl ProactiveSweep {
    /// The report of one cell.
    pub fn report(&self, mtbf: &str, mode: PredictionMode) -> &SimReport {
        &self
            .cells
            .iter()
            .find(|c| c.mtbf == mtbf && c.mode == mode)
            .expect("cell exists")
            .report
    }

    fn metric_table(&self, metric: impl Fn(&SimReport) -> String) -> Table {
        let points = ordered_unique(self.cells.iter().map(|c| c.mtbf.clone()));
        let mut columns = vec!["mode".to_string()];
        columns.extend(points.iter().map(|p| format!("mtbf {p}")));
        let mut t = Table::new(columns);
        for mode in PredictionMode::ALL {
            let mut row = vec![mode.to_string()];
            for point in &points {
                row.push(metric(self.report(point, mode)));
            }
            t.row(row);
        }
        t
    }

    /// Deadline-miss ratio per (mode, MTBF).
    pub fn miss_ratio_table(&self) -> Table {
        self.metric_table(|r| fmt_f64(miss_ratio(r)))
    }

    /// Total tardiness (s) per (mode, MTBF).
    pub fn tardiness_table(&self) -> Table {
        self.metric_table(|r| format!("{:.0}", r.total_tardiness().as_secs_f64()))
    }

    /// Prediction-subsystem counters per (mode, MTBF) as
    /// `padded/averted/preempt`; `-` where prediction is off.
    pub fn prediction_table(&self) -> Table {
        self.metric_table(|r| match &r.prediction {
            Some(p) => format!(
                "{}/{}/{}",
                p.plans_padded, p.risk_averted_placements, p.preemptive_speculations
            ),
            None => "-".to_string(),
        })
    }
}

/// Deadline-miss ratio of one run.
pub fn miss_ratio(report: &SimReport) -> f64 {
    report.deadline_misses() as f64 / report.outcomes.len().max(1) as f64
}

/// One reactive cell of `BENCH_failure.json`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReactivePoint {
    /// MTBF label ("none", "8h", ...).
    pub mtbf: String,
    /// Scheduler label ("WOHA-LPF", ...).
    pub scheduler: String,
    /// Deadline-miss ratio.
    pub miss_ratio: f64,
    /// Total tardiness, seconds.
    pub tardiness_s: f64,
    /// Node crashes observed before the run drained.
    pub node_failures: u64,
    /// Running attempts requeued by crashes.
    pub tasks_requeued: u64,
}

/// One proactive cell of `BENCH_failure.json`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProactivePoint {
    /// MTBF label ("none", "8h", ...).
    pub mtbf: String,
    /// Prediction mode label ("reactive", "pad", "pad+risk").
    pub mode: String,
    /// Deadline-miss ratio.
    pub miss_ratio: f64,
    /// Total tardiness, seconds.
    pub tardiness_s: f64,
    /// Node crashes observed before the run drained.
    pub node_failures: u64,
    /// Plans generated with proactive padding applied.
    pub plans_padded: u64,
    /// Placements declined because the picked node was risky.
    pub risk_averted_placements: u64,
    /// Speculative duplicates launched off risky nodes.
    pub preemptive_speculations: u64,
    /// Highest end-of-run propensity score across nodes.
    pub peak_propensity: f64,
}

/// The full failure study written to `BENCH_failure.json`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FailureStudyReport {
    /// Experiment name (always "failure_study").
    pub experiment: String,
    /// Whether this was the `--quick` CI sweep.
    pub quick: bool,
    /// Number of workflows in the workload.
    pub workflow_count: u64,
    /// Reactive sweep: every (MTBF, scheduler) pair, prediction off.
    pub reactive: Vec<ReactivePoint>,
    /// Proactive sweep: WOHA-LPF at every (MTBF, prediction mode) pair.
    pub proactive: Vec<ProactivePoint>,
}

/// Flattens the two sweeps into the machine-readable report.
pub fn failure_study_report(
    reactive: &FailureSweep,
    proactive: &ProactiveSweep,
    quick: bool,
) -> FailureStudyReport {
    FailureStudyReport {
        experiment: "failure_study".to_string(),
        quick,
        workflow_count: reactive.workflow_count as u64,
        reactive: reactive
            .cells
            .iter()
            .map(|c| ReactivePoint {
                mtbf: c.mtbf.clone(),
                scheduler: c.scheduler.to_string(),
                miss_ratio: miss_ratio(&c.report),
                tardiness_s: c.report.total_tardiness().as_secs_f64(),
                node_failures: c.report.node_failures,
                tasks_requeued: c.report.tasks_requeued,
            })
            .collect(),
        proactive: proactive
            .cells
            .iter()
            .map(|c| {
                let p = c.report.prediction.as_ref();
                ProactivePoint {
                    mtbf: c.mtbf.clone(),
                    mode: c.mode.label().to_string(),
                    miss_ratio: miss_ratio(&c.report),
                    tardiness_s: c.report.total_tardiness().as_secs_f64(),
                    node_failures: c.report.node_failures,
                    plans_padded: p.map_or(0, |p| p.plans_padded),
                    risk_averted_placements: p.map_or(0, |p| p.risk_averted_placements),
                    preemptive_speculations: p.map_or(0, |p| p.preemptive_speculations),
                    peak_propensity: p.map_or(0.0, |p| {
                        p.node_propensity.iter().copied().fold(0.0f64, f64::max)
                    }),
                }
            })
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenarios::{demo_cluster, fig11_workflows};

    #[test]
    fn failures_degrade_deadline_performance() {
        let workflows = fig11_workflows();
        let cluster = demo_cluster();
        let points = vec![
            ("none".to_string(), None),
            ("12m".to_string(), Some(SimDuration::from_mins(12))),
        ];
        let config = SimConfig {
            seed: 7,
            ..SimConfig::default()
        };
        let sweep = run_failure_sweep(
            &workflows,
            &cluster,
            &points,
            SimDuration::from_mins(3),
            &config,
            4,
        );
        assert_eq!(sweep.cells.len(), 2 * SCHEDULERS.len());
        for kind in SCHEDULERS {
            let clean = sweep.report("none", kind);
            let faulty = sweep.report("12m", kind);
            // Every run terminates even under heavy churn.
            assert!(clean.completed, "{kind}");
            assert!(faulty.completed, "{kind}");
            assert_eq!(clean.node_failures, 0, "{kind}");
            assert!(faulty.node_failures > 0, "{kind}");
            assert!(faulty.tasks_requeued > 0, "{kind}");
            // Losing nodes never helps: misses and tardiness only grow.
            assert!(
                faulty.deadline_misses() >= clean.deadline_misses(),
                "{kind}: {} < {}",
                faulty.deadline_misses(),
                clean.deadline_misses()
            );
            assert!(
                faulty.total_tardiness() >= clean.total_tardiness(),
                "{kind}"
            );
        }
        // The tables cover every point.
        assert_eq!(sweep.miss_ratio_table().len(), SCHEDULERS.len());
        assert_eq!(sweep.tardiness_table().len(), SCHEDULERS.len());
        assert_eq!(sweep.disruption_table().len(), SCHEDULERS.len());
    }

    #[test]
    fn proactive_sweep_matches_reactive_baseline_and_reports_prediction() {
        let workflows = fig11_workflows();
        let cluster = demo_cluster();
        let points = vec![
            ("none".to_string(), None),
            ("12m".to_string(), Some(SimDuration::from_mins(12))),
        ];
        let config = SimConfig {
            seed: 7,
            ..SimConfig::default()
        };
        let mttr = SimDuration::from_mins(3);
        let reactive = run_failure_sweep(&workflows, &cluster, &points, mttr, &config, 4);
        let proactive = run_proactive_sweep(&workflows, &cluster, &points, mttr, &config, 2);
        assert_eq!(proactive.cells.len(), 2 * PredictionMode::ALL.len());

        for (label, _) in &points {
            // Mode Off IS the reactive WOHA-LPF run, bit for bit.
            assert_eq!(
                proactive.report(label, PredictionMode::Off),
                reactive.report(label, SchedulerKind::WohaLpf),
                "{label}"
            );
            // Prediction modes carry a prediction section; Off does not.
            assert!(proactive
                .report(label, PredictionMode::Off)
                .prediction
                .is_none());
            for mode in [PredictionMode::PadOnly, PredictionMode::PadRisk] {
                let report = proactive.report(label, mode);
                assert!(report.completed, "{label} {mode}");
                let p = report.prediction.as_ref().expect("prediction on");
                if *label == "12m" {
                    // A 12 m MTBF pads every plan and leaves nonzero scores.
                    assert!(p.plans_padded > 0, "{mode}");
                    assert!(p.node_propensity.iter().any(|&s| s > 0.0), "{mode}");
                } else {
                    // Fault-free: padding has no MTBF to work from and no
                    // crash ever bumps a score.
                    assert_eq!(p.plans_padded, 0, "{mode}");
                    assert!(p.node_propensity.iter().all(|&s| s == 0.0), "{mode}");
                }
            }
        }

        // The JSON flattening covers every cell of both sweeps.
        let json = failure_study_report(&reactive, &proactive, true);
        assert_eq!(json.experiment, "failure_study");
        assert_eq!(json.reactive.len(), reactive.cells.len());
        assert_eq!(json.proactive.len(), proactive.cells.len());
        let roundtrip: FailureStudyReport =
            serde_json::from_str(&serde_json::to_string(&json).unwrap()).unwrap();
        assert_eq!(roundtrip, json);
        assert_eq!(
            proactive.prediction_table().len(),
            PredictionMode::ALL.len()
        );
    }
}
