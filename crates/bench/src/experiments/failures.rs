//! Node-failure resilience study: the deadline-miss ratio and tardiness of
//! the schedulers as the per-node MTBF shrinks (no counterpart figure in
//! the paper, whose testbed never loses nodes; this probes how WOHA's
//! progress-based priorities and the baselines degrade when the simulator's
//! fault injector takes nodes away mid-flight).

use crate::runner::run_many;
use crate::schedulers::SchedulerKind;
use crate::table::{fmt_f64, Table};
use woha_model::{SimDuration, WorkflowSpec};
use woha_sim::{ClusterConfig, FaultConfig, SimConfig, SimReport};

/// The four schedulers the study compares (one WOHA variant suffices; the
/// three policies share the fault-handling path).
pub const SCHEDULERS: [SchedulerKind; 4] = [
    SchedulerKind::Edf,
    SchedulerKind::Fifo,
    SchedulerKind::Fair,
    SchedulerKind::WohaLpf,
];

/// One MTBF point of the sweep: a label and the per-node mean time between
/// failures (`None` = fault-free baseline).
pub type MtbfPoint = (String, Option<SimDuration>);

/// The default sweep: fault-free down to a crash every 2 h per node.
pub fn default_mtbf_points() -> Vec<MtbfPoint> {
    let mut points = vec![("none".to_string(), None)];
    for hours in [16u64, 8, 4, 2] {
        points.push((
            format!("{hours}h"),
            Some(SimDuration::from_mins(hours * 60)),
        ));
    }
    points
}

/// One cell of the sweep.
#[derive(Debug, Clone)]
pub struct FailureCell {
    /// MTBF label ("none", "8h", ...).
    pub mtbf: String,
    /// Scheduler.
    pub scheduler: SchedulerKind,
    /// Full report.
    pub report: SimReport,
}

/// The whole sweep: every (MTBF, scheduler) pair.
#[derive(Debug, Clone)]
pub struct FailureSweep {
    /// All cells, grouped by MTBF in sweep order.
    pub cells: Vec<FailureCell>,
    /// Number of workflows in the workload.
    pub workflow_count: usize,
}

/// Runs the sweep: the same workload and cluster under every
/// `(MTBF point, scheduler)` pair. Nodes repair after an exponential
/// downtime of mean `mttr`; `seed` drives jitter and the fault streams, so
/// each point is reproducible and all schedulers at one point face the
/// same crash schedule.
pub fn run_failure_sweep(
    workflows: &[WorkflowSpec],
    cluster: &ClusterConfig,
    points: &[MtbfPoint],
    mttr: SimDuration,
    config: &SimConfig,
) -> FailureSweep {
    let mut cells = Vec::new();
    for (label, mtbf) in points {
        let faulty = match mtbf {
            Some(mtbf) => cluster
                .clone()
                .with_faults(FaultConfig::with_mtbf(*mtbf, mttr)),
            None => cluster.clone(),
        };
        for (scheduler, report) in run_many(&SCHEDULERS, workflows, &faulty, config) {
            cells.push(FailureCell {
                mtbf: label.clone(),
                scheduler,
                report,
            });
        }
    }
    FailureSweep {
        cells,
        workflow_count: workflows.len(),
    }
}

impl FailureSweep {
    /// The report of one cell.
    pub fn report(&self, mtbf: &str, scheduler: SchedulerKind) -> &SimReport {
        &self
            .cells
            .iter()
            .find(|c| c.mtbf == mtbf && c.scheduler == scheduler)
            .expect("cell exists")
            .report
    }

    fn metric_table(&self, metric: impl Fn(&SimReport) -> String) -> Table {
        let points: Vec<String> = {
            let mut seen = Vec::new();
            for c in &self.cells {
                if !seen.contains(&c.mtbf) {
                    seen.push(c.mtbf.clone());
                }
            }
            seen
        };
        let mut columns = vec!["scheduler".to_string()];
        columns.extend(points.iter().map(|p| format!("mtbf {p}")));
        let mut t = Table::new(columns);
        for kind in SCHEDULERS {
            let mut row = vec![kind.to_string()];
            for point in &points {
                row.push(metric(self.report(point, kind)));
            }
            t.row(row);
        }
        t
    }

    /// Deadline-miss ratio per (scheduler, MTBF).
    pub fn miss_ratio_table(&self) -> Table {
        self.metric_table(|r| fmt_f64(r.deadline_misses() as f64 / r.outcomes.len().max(1) as f64))
    }

    /// Total tardiness (s) per (scheduler, MTBF).
    pub fn tardiness_table(&self) -> Table {
        self.metric_table(|r| format!("{:.0}", r.total_tardiness().as_secs_f64()))
    }

    /// Fault-subsystem counters per (scheduler, MTBF): crashes seen before
    /// the run ended, tasks requeued, map outputs lost, and work thrown
    /// away, as `failures/requeued/maps-lost/lost-slot-s`.
    pub fn disruption_table(&self) -> Table {
        self.metric_table(|r| {
            format!(
                "{}/{}/{}/{:.0}",
                r.node_failures,
                r.tasks_requeued,
                r.map_outputs_lost,
                r.work_lost_slot_ms as f64 / 1000.0
            )
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenarios::{demo_cluster, fig11_workflows};

    #[test]
    fn failures_degrade_deadline_performance() {
        let workflows = fig11_workflows();
        let cluster = demo_cluster();
        let points = vec![
            ("none".to_string(), None),
            ("12m".to_string(), Some(SimDuration::from_mins(12))),
        ];
        let config = SimConfig {
            seed: 7,
            ..SimConfig::default()
        };
        let sweep = run_failure_sweep(
            &workflows,
            &cluster,
            &points,
            SimDuration::from_mins(3),
            &config,
        );
        assert_eq!(sweep.cells.len(), 2 * SCHEDULERS.len());
        for kind in SCHEDULERS {
            let clean = sweep.report("none", kind);
            let faulty = sweep.report("12m", kind);
            // Every run terminates even under heavy churn.
            assert!(clean.completed, "{kind}");
            assert!(faulty.completed, "{kind}");
            assert_eq!(clean.node_failures, 0, "{kind}");
            assert!(faulty.node_failures > 0, "{kind}");
            assert!(faulty.tasks_requeued > 0, "{kind}");
            // Losing nodes never helps: misses and tardiness only grow.
            assert!(
                faulty.deadline_misses() >= clean.deadline_misses(),
                "{kind}: {} < {}",
                faulty.deadline_misses(),
                clean.deadline_misses()
            );
            assert!(
                faulty.total_tardiness() >= clean.total_tardiness(),
                "{kind}"
            );
        }
        // The tables cover every point.
        assert_eq!(sweep.miss_ratio_table().len(), SCHEDULERS.len());
        assert_eq!(sweep.tardiness_table().len(), SCHEDULERS.len());
        assert_eq!(sweep.disruption_table().len(), SCHEDULERS.len());
    }
}
