//! Trace characterization experiments: Fig 5 (task durations) and Fig 6
//! (task counts), comparing the synthetic trace against every reference
//! point the paper publishes about the Yahoo! WebScope data.

use crate::table::{fmt_f64, Table};
use woha_model::JobSpec;
use woha_trace::stats::Cdf;
use woha_trace::yahoo::YahooTraceConfig;
use woha_trace::Rng;

/// Number of jobs in the paper's trace ("more than 4000 jobs").
pub const TRACE_JOBS: usize = 4_000;

/// The generated trace plus its derived statistics.
#[derive(Debug, Clone)]
pub struct TraceStats {
    /// The synthetic jobs.
    pub jobs: Vec<JobSpec>,
    /// CDF of per-job map task duration (seconds).
    pub map_duration: Cdf,
    /// CDF of per-job reduce task duration (seconds; reduce-less jobs
    /// excluded).
    pub reduce_duration: Cdf,
    /// CDF of reduce/map duration ratio within each job.
    pub duration_ratio: Cdf,
    /// CDF of mapper counts.
    pub map_count: Cdf,
    /// CDF of reducer counts.
    pub reduce_count: Cdf,
    /// CDF of map/reduce count ratio within each job.
    pub count_ratio: Cdf,
}

/// Generates the trace and computes the Fig 5/6 statistics.
pub fn run_trace_stats(seed: u64) -> TraceStats {
    let jobs = YahooTraceConfig::default().generate_jobs(&mut Rng::new(seed), TRACE_JOBS);
    let with_reduces: Vec<&JobSpec> = jobs.iter().filter(|j| !j.is_map_only()).collect();
    TraceStats {
        map_duration: Cdf::from_samples(jobs.iter().map(|j| j.map_duration().as_secs_f64())),
        reduce_duration: Cdf::from_samples(
            with_reduces
                .iter()
                .map(|j| j.reduce_duration().as_secs_f64()),
        ),
        duration_ratio: Cdf::from_samples(
            with_reduces.iter().map(|j| {
                j.reduce_duration().as_secs_f64() / j.map_duration().as_secs_f64().max(1e-9)
            }),
        ),
        map_count: Cdf::from_samples(jobs.iter().map(|j| f64::from(j.map_tasks()))),
        reduce_count: Cdf::from_samples(jobs.iter().map(|j| f64::from(j.reduce_tasks()))),
        count_ratio: Cdf::from_samples(
            with_reduces
                .iter()
                .map(|j| f64::from(j.map_tasks()) / f64::from(j.reduce_tasks()).max(1.0)),
        ),
        jobs,
    }
}

impl TraceStats {
    /// The Fig 5(a) table: CDF points of task execution time, with the
    /// paper's qualitative reference points.
    pub fn fig5a_table(&self) -> Table {
        let mut t = Table::new(vec!["duration", "F(map)", "F(reduce)", "paper reference"]);
        let probes: [(f64, &str); 4] = [
            (10.0, "most mappers finish in 10s-100s"),
            (100.0, ">50% of reducers take >100s"),
            (1_000.0, "~10% of reducers take >1000s"),
            (3_000.0, ""),
        ];
        for (secs, note) in probes {
            t.row(vec![
                format!("{secs:.0}s"),
                fmt_f64(self.map_duration.fraction_at_or_below(secs)),
                fmt_f64(self.reduce_duration.fraction_at_or_below(secs)),
                note.to_string(),
            ]);
        }
        t
    }

    /// The Fig 5(b) table: CDF of reduce/map duration ratio.
    pub fn fig5b_table(&self) -> Table {
        let mut t = Table::new(vec!["reduce/map ratio", "F(ratio)"]);
        for ratio in [0.1, 0.5, 1.0, 2.0, 5.0, 10.0, 100.0] {
            t.row(vec![
                format!("{ratio}"),
                fmt_f64(self.duration_ratio.fraction_at_or_below(ratio)),
            ]);
        }
        t
    }

    /// The Fig 6(a) table: CDF points of task counts.
    pub fn fig6a_table(&self) -> Table {
        let mut t = Table::new(vec![
            "tasks",
            "F(mappers)",
            "F(reducers)",
            "paper reference",
        ]);
        let probes: [(f64, &str); 5] = [
            (1.0, ""),
            (10.0, ">60% of jobs have <10 reducers"),
            (100.0, "~30% of jobs have >100 mappers"),
            (1_000.0, ""),
            (3_000.0, ""),
        ];
        for (count, note) in probes {
            t.row(vec![
                format!("{count:.0}"),
                fmt_f64(self.map_count.fraction_at_or_below(count)),
                fmt_f64(self.reduce_count.fraction_at_or_below(count)),
                note.to_string(),
            ]);
        }
        t
    }

    /// The Fig 6(b) table: CDF of map/reduce count ratio.
    pub fn fig6b_table(&self) -> Table {
        let mut t = Table::new(vec!["map/reduce count ratio", "F(ratio)"]);
        for ratio in [0.1, 0.5, 1.0, 2.0, 10.0, 100.0, 1_000.0] {
            t.row(vec![
                format!("{ratio}"),
                fmt_f64(self.count_ratio.fraction_at_or_below(ratio)),
            ]);
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_match_paper_reference_points() {
        let s = run_trace_stats(2024);
        assert_eq!(s.jobs.len(), TRACE_JOBS);
        // Fig 5(a): 10-100s band holds most mappers.
        let band =
            s.map_duration.fraction_at_or_below(100.0) - s.map_duration.fraction_at_or_below(10.0);
        assert!(band > 0.6, "band {band}");
        // >50% reducers over 100s, ~10% over 1000s.
        assert!(s.reduce_duration.fraction_at_or_below(100.0) < 0.5);
        let over_1000 = 1.0 - s.reduce_duration.fraction_at_or_below(1_000.0);
        assert!((0.04..0.2).contains(&over_1000), "{over_1000}");
        // Fig 5(b): most ratios above 1 (reducers slower).
        assert!(s.duration_ratio.fraction_at_or_below(1.0) < 0.3);
        // Fig 6(a): ~30% jobs with >100 mappers; >60% with <10 reducers.
        let over_100 = 1.0 - s.map_count.fraction_at_or_below(100.0);
        assert!((0.2..0.45).contains(&over_100), "{over_100}");
        assert!(s.reduce_count.fraction_at_or_below(9.0) > 0.6);
        // Fig 6(b): mappers usually outnumber reducers.
        assert!(s.count_ratio.fraction_at_or_below(1.0) < 0.35);
    }

    #[test]
    fn tables_render() {
        let s = run_trace_stats(7);
        for t in [
            s.fig5a_table(),
            s.fig5b_table(),
            s.fig6a_table(),
            s.fig6b_table(),
        ] {
            assert!(!t.is_empty());
            assert!(t.render().contains("F("));
        }
    }
}
