//! Ablations of the design choices DESIGN.md calls out:
//!
//! - **Resource cap** — uncapped vs fixed caps vs binary-searched minimal
//!   cap, on the Fig 11 scenario (generalizing Fig 2).
//! - **Plan slack** — how much safety margin the plan generator should
//!   reserve for submitter latency and estimation error.
//! - **Heartbeat interval** — sensitivity of deadline outcomes to the
//!   TaskTracker heartbeat period.

use crate::scenarios::{demo_cluster, fig11_workflows};
use crate::table::Table;
use woha_core::{CapMode, PriorityPolicy, ReplanConfig, WohaConfig, WohaScheduler};
use woha_model::SimDuration;
use woha_sim::{run_simulation, SimConfig, SimReport};

fn run_fig11_with(config_woha: WohaConfig, heartbeat: Option<SimDuration>) -> SimReport {
    let workflows = fig11_workflows();
    let mut cluster = demo_cluster();
    if let Some(hb) = heartbeat {
        cluster = cluster.with_heartbeat(hb);
    }
    let mut scheduler = WohaScheduler::new(config_woha);
    run_simulation(&workflows, &mut scheduler, &cluster, &SimConfig::default())
}

/// Resource-cap ablation: deadline misses and total tardiness on the
/// Fig 11 scenario under different cap modes.
pub fn cap_ablation() -> Table {
    let mut t = Table::new(vec![
        "cap mode",
        "misses",
        "total tardiness(s)",
        "W-3 span(s)",
    ]);
    let modes: Vec<(String, CapMode)> = vec![
        ("uncapped (full 96)".into(), CapMode::Uncapped),
        ("fixed 8".into(), CapMode::Fixed(8)),
        ("fixed 24".into(), CapMode::Fixed(24)),
        ("fixed 48".into(), CapMode::Fixed(48)),
        ("min-feasible (paper)".into(), CapMode::MinFeasible),
    ];
    for (label, cap_mode) in modes {
        let report = run_fig11_with(
            WohaConfig {
                cap_mode,
                ..WohaConfig::new(PriorityPolicy::Lpf, 96)
            },
            None,
        );
        t.row(vec![
            label,
            report.deadline_misses().to_string(),
            format!("{:.0}", report.total_tardiness().as_secs_f64()),
            format!("{:.0}", report.workspans()[2].as_secs_f64()),
        ]);
    }
    t
}

/// Plan-slack ablation on the Fig 11 scenario.
pub fn slack_ablation() -> Table {
    let mut t = Table::new(vec!["plan slack", "misses", "total tardiness(s)"]);
    for slack in [0.0, 0.04, 0.08, 0.16, 0.30] {
        let report = run_fig11_with(
            WohaConfig {
                plan_slack: slack,
                ..WohaConfig::new(PriorityPolicy::Lpf, 96)
            },
            None,
        );
        t.row(vec![
            format!("{slack:.2}"),
            report.deadline_misses().to_string(),
            format!("{:.0}", report.total_tardiness().as_secs_f64()),
        ]);
    }
    t
}

/// Heartbeat-interval ablation on the Fig 11 scenario.
pub fn heartbeat_ablation() -> Table {
    let mut t = Table::new(vec![
        "heartbeat",
        "misses",
        "W-1 span(s)",
        "events processed",
    ]);
    for secs in [1u64, 2, 3, 5, 10] {
        let report = run_fig11_with(
            WohaConfig::new(PriorityPolicy::Lpf, 96),
            Some(SimDuration::from_secs(secs)),
        );
        t.row(vec![
            format!("{secs}s"),
            report.deadline_misses().to_string(),
            format!("{:.0}", report.workspans()[0].as_secs_f64()),
            report.events_processed.to_string(),
        ]);
    }
    t
}

/// Replanning ablation: the Fig 11 scenario under heavy estimation error
/// (±`jitter` on every task duration), with and without mid-flight
/// replanning, across several jitter seeds.
pub fn replan_ablation(jitter: f64, seeds: std::ops::Range<u64>) -> Table {
    let workflows = fig11_workflows();
    let cluster = demo_cluster();
    let mut t = Table::new(vec![
        "seed",
        "misses (static plan)",
        "misses (replan)",
        "replans",
    ]);
    for seed in seeds {
        let config = SimConfig {
            duration_jitter: jitter,
            seed,
            ..SimConfig::default()
        };
        let static_misses = {
            let mut s = WohaScheduler::new(WohaConfig::new(PriorityPolicy::Lpf, 96));
            run_simulation(&workflows, &mut s, &cluster, &config).deadline_misses()
        };
        let mut s = WohaScheduler::new(WohaConfig {
            replan: Some(ReplanConfig::default()),
            ..WohaConfig::new(PriorityPolicy::Lpf, 96)
        });
        let report = run_simulation(&workflows, &mut s, &cluster, &config);
        t.row(vec![
            seed.to_string(),
            static_misses.to_string(),
            report.deadline_misses().to_string(),
            s.replans().to_string(),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cap_ablation_shows_min_feasible_wins() {
        let t = cap_ablation();
        let text = t.render();
        // The min-feasible row must report zero misses.
        let last = text.lines().last().unwrap();
        assert!(last.starts_with("min-feasible"), "{text}");
        assert!(
            last.contains("  0  "),
            "min-feasible should meet all: {text}"
        );
        assert_eq!(t.len(), 5);
    }

    #[test]
    fn replan_ablation_never_hurts_on_average() {
        let t = replan_ablation(0.25, 0..4);
        let mut static_total = 0u32;
        let mut replan_total = 0u32;
        for line in t.render().lines().skip(2) {
            let cells: Vec<&str> = line.split_whitespace().collect();
            static_total += cells[1].parse::<u32>().unwrap();
            replan_total += cells[2].parse::<u32>().unwrap();
        }
        assert!(
            replan_total <= static_total + 1,
            "replanning should not hurt: {static_total} -> {replan_total}"
        );
    }

    #[test]
    fn heartbeat_ablation_runs() {
        let t = heartbeat_ablation();
        assert_eq!(t.len(), 5);
        // Coarser heartbeats process fewer events.
        let rows: Vec<u64> = t
            .render()
            .lines()
            .skip(2)
            .map(|l| l.split_whitespace().last().unwrap().parse().unwrap())
            .collect();
        assert!(rows[0] > rows[4], "1s heartbeats process more events");
    }
}
