//! One module per group of paper figures; each exposes `run_*` functions
//! returning printable results.

pub mod ablation;
pub mod deadline;
pub mod demo;
pub mod failures;
pub mod ingest;
pub mod master_failover;
pub mod obs;
pub mod plans;
pub mod service;
pub mod throughput;
pub mod tracestats;
