//! The Yahoo-trace deadline experiments: Fig 8 (deadline-miss ratio),
//! Fig 9 (maximum tardiness), and Fig 10 (total tardiness), swept over the
//! three cluster sizes (200m-200r, 240m-240r, 280m-280r) and the six
//! schedulers.

use crate::scenarios::{trace_clusters, yahoo_workload, YahooScenario};
use crate::schedulers::SchedulerKind;
use crate::sweep::{CellKey, SimSweep};
use crate::table::{fmt_f64, fmt_secs, ordered_unique, Table};
use woha_model::SimDuration;
use woha_sim::{SimConfig, SimReport};

/// One cell of the Figs 8–10 sweep.
#[derive(Debug, Clone)]
pub struct SweepCell {
    /// Cluster label ("200m-200r", ...).
    pub cluster: String,
    /// Scheduler.
    pub scheduler: SchedulerKind,
    /// Full report.
    pub report: SimReport,
}

/// The whole sweep: every (cluster size, scheduler) pair.
#[derive(Debug, Clone)]
pub struct TraceSweep {
    /// All cells, grouped by cluster in `trace_clusters()` order.
    pub cells: Vec<SweepCell>,
    /// Number of workflows in the workload.
    pub workflow_count: usize,
}

/// Runs the Figs 8–10 sweep. `jitter` adds the given relative task-duration
/// noise so plans face estimation error, as on a real cluster. Uses one
/// worker thread per scheduler; see [`run_trace_sweep_jobs`] for an
/// explicit thread budget.
pub fn run_trace_sweep(scenario: &YahooScenario, jitter: f64) -> TraceSweep {
    run_trace_sweep_jobs(scenario, jitter, SchedulerKind::ALL.len())
}

/// [`run_trace_sweep`] with an explicit worker-thread budget. The whole
/// 18-cell grid (3 clusters × 6 schedulers) is one pool; results are
/// identical for any `jobs`.
pub fn run_trace_sweep_jobs(scenario: &YahooScenario, jitter: f64, jobs: usize) -> TraceSweep {
    let workload = yahoo_workload(scenario);
    let workflows = workload.workflows();
    let config = SimConfig {
        duration_jitter: jitter,
        seed: scenario.seed,
        ..SimConfig::default()
    };
    let clusters = trace_clusters();
    let mut sweep = SimSweep::new();
    for (label, cluster) in &clusters {
        sweep.push_kinds(
            &CellKey::new().with("cluster", label),
            &SchedulerKind::ALL,
            workflows,
            cluster,
            &config,
        );
    }
    let reports = sweep.run(jobs).into_reports();
    let coords = clusters.iter().flat_map(|(label, _)| {
        SchedulerKind::ALL
            .iter()
            .map(move |&kind| (label.clone(), kind))
    });
    TraceSweep {
        cells: coords
            .zip(reports)
            .map(|((cluster, scheduler), report)| SweepCell {
                cluster,
                scheduler,
                report,
            })
            .collect(),
        workflow_count: workflows.len(),
    }
}

impl TraceSweep {
    fn metric_table(&self, header: &str, metric: impl Fn(&SimReport) -> String) -> Table {
        let clusters = ordered_unique(self.cells.iter().map(|c| c.cluster.clone()));
        let mut columns: Vec<String> = vec!["scheduler".to_string()];
        columns.extend(clusters.iter().cloned());
        let _ = header;
        let mut t = Table::new(columns);
        for kind in SchedulerKind::ALL {
            let mut cells = vec![kind.to_string()];
            for cluster in &clusters {
                let cell = self
                    .cells
                    .iter()
                    .find(|c| c.scheduler == kind && &c.cluster == cluster)
                    .expect("sweep covers all pairs");
                cells.push(metric(&cell.report));
            }
            t.row(cells);
        }
        t
    }

    /// Fig 8: deadline-miss ratio per scheduler per cluster size.
    pub fn fig8_table(&self) -> Table {
        self.metric_table("miss ratio", |r| fmt_f64(r.miss_ratio()))
    }

    /// Fig 9: maximum tardiness (seconds).
    pub fn fig9_table(&self) -> Table {
        self.metric_table("max tardiness", |r| fmt_secs(r.max_tardiness()))
    }

    /// Fig 10: total tardiness (seconds).
    pub fn fig10_table(&self) -> Table {
        self.metric_table("total tardiness", |r| fmt_secs(r.total_tardiness()))
    }

    /// Miss ratio of one pair.
    pub fn miss_ratio(&self, cluster: &str, scheduler: SchedulerKind) -> f64 {
        self.cells
            .iter()
            .find(|c| c.scheduler == scheduler && c.cluster == cluster)
            .expect("pair exists")
            .report
            .miss_ratio()
    }

    /// Mean miss ratio of a scheduler across all cluster sizes.
    pub fn mean_miss_ratio(&self, scheduler: SchedulerKind) -> f64 {
        let ratios: Vec<f64> = self
            .cells
            .iter()
            .filter(|c| c.scheduler == scheduler)
            .map(|c| c.report.miss_ratio())
            .collect();
        ratios.iter().sum::<f64>() / ratios.len() as f64
    }

    /// Total tardiness of one pair.
    pub fn total_tardiness(&self, cluster: &str, scheduler: SchedulerKind) -> SimDuration {
        self.cells
            .iter()
            .find(|c| c.scheduler == scheduler && c.cluster == cluster)
            .expect("pair exists")
            .report
            .total_tardiness()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_sweep() -> TraceSweep {
        run_trace_sweep(&YahooScenario::default(), 0.1)
    }

    #[test]
    fn sweep_shape_matches_paper() {
        let sweep = quick_sweep();
        assert_eq!(sweep.cells.len(), 18, "3 clusters x 6 schedulers");
        assert_eq!(sweep.workflow_count, 46);
        // Every run completed all workflows.
        assert!(sweep.cells.iter().all(|c| c.report.completed));

        // Fig 8 qualitative shape: FIFO (deadline-blind, strict arrival
        // order) never beats the best WOHA variant and misses strictly
        // more on the resource-constrained cluster sizes; at the largest
        // size everyone converges ("more than adequate resources"), which
        // is itself the paper's observation.
        let mut fifo_strictly_worse = 0;
        for cluster in ["200m-200r", "240m-240r", "280m-280r"] {
            let fifo = sweep.miss_ratio(cluster, SchedulerKind::Fifo);
            let fair = sweep.miss_ratio(cluster, SchedulerKind::Fair);
            let woha_best = SchedulerKind::WOHA
                .iter()
                .map(|&k| sweep.miss_ratio(cluster, k))
                .fold(f64::INFINITY, f64::min);
            assert!(
                fifo >= woha_best && fair >= woha_best,
                "{cluster}: fifo {fifo:.2} fair {fair:.2} woha {woha_best:.2}"
            );
            if fifo > woha_best {
                fifo_strictly_worse += 1;
            }
        }
        assert!(fifo_strictly_worse >= 2, "FIFO must lose clearly somewhere");

        // WOHA's mean miss ratio across cluster sizes beats EDF's (the
        // paper's ~10% improvement in deadline satisfaction).
        let edf = sweep.mean_miss_ratio(SchedulerKind::Edf);
        for kind in SchedulerKind::WOHA {
            let woha = sweep.mean_miss_ratio(kind);
            assert!(
                woha <= edf + 1e-9,
                "{kind} {woha:.3} should beat EDF {edf:.3}"
            );
        }

        // The paper's crossover: WOHA-HLF/LPF visibly outperform EDF at
        // the middle ("less than adequate") cluster size, and the gap
        // narrows at the largest size.
        let edf_mid = sweep.miss_ratio("240m-240r", SchedulerKind::Edf);
        let woha_mid = sweep.miss_ratio("240m-240r", SchedulerKind::WohaLpf);
        assert!(
            woha_mid < edf_mid,
            "mid: woha {woha_mid:.2} vs edf {edf_mid:.2}"
        );
        let edf_big = sweep.miss_ratio("280m-280r", SchedulerKind::Edf);
        let woha_big = sweep.miss_ratio("280m-280r", SchedulerKind::WohaLpf);
        assert!((edf_big - woha_big).abs() <= 0.05, "merge at large size");

        // More resources, (weakly) fewer misses for the deadline-aware
        // schedulers.
        for kind in [SchedulerKind::Edf, SchedulerKind::WohaLpf] {
            let small = sweep.miss_ratio("200m-200r", kind);
            let large = sweep.miss_ratio("280m-280r", kind);
            assert!(large <= small + 1e-9, "{kind}: {small:.2} -> {large:.2}");
        }
    }

    #[test]
    fn tables_render_all_rows() {
        let sweep = quick_sweep();
        for t in [sweep.fig8_table(), sweep.fig9_table(), sweep.fig10_table()] {
            assert_eq!(t.len(), 6);
            assert!(t.render().contains("200m-200r"));
        }
    }
}
