//! Experiment execution: run one scenario under one or many schedulers,
//! optionally in parallel across schedulers.

use crate::schedulers::SchedulerKind;
use woha_model::{SlotKind, WorkflowSpec};
use woha_sim::{run_simulation, ClusterConfig, SimConfig, SimReport};

/// Runs `workflows` on `cluster` under one scheduler kind.
pub fn run_one(
    kind: SchedulerKind,
    workflows: &[WorkflowSpec],
    cluster: &ClusterConfig,
    config: &SimConfig,
) -> SimReport {
    let total = cluster.total_slots(SlotKind::Map) + cluster.total_slots(SlotKind::Reduce);
    let mut scheduler = kind.build(total);
    run_simulation(workflows, scheduler.as_mut(), cluster, config)
}

/// Runs the same scenario under every scheduler in `kinds`, in parallel
/// (one OS thread per scheduler), returning reports in `kinds` order.
pub fn run_many(
    kinds: &[SchedulerKind],
    workflows: &[WorkflowSpec],
    cluster: &ClusterConfig,
    config: &SimConfig,
) -> Vec<(SchedulerKind, SimReport)> {
    let mut results: Vec<Option<(SchedulerKind, SimReport)>> = Vec::new();
    results.resize_with(kinds.len(), || None);
    std::thread::scope(|scope| {
        for (slot, &kind) in results.iter_mut().zip(kinds) {
            scope.spawn(move || {
                *slot = Some((kind, run_one(kind, workflows, cluster, config)));
            });
        }
    });
    results
        .into_iter()
        .map(|r| r.expect("every thread filled its slot"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenarios::{fig2_cluster, fig2_workflows};

    #[test]
    fn run_many_matches_run_one() {
        let workflows = fig2_workflows();
        let cluster = fig2_cluster();
        let config = SimConfig::default();
        let kinds = [SchedulerKind::Fifo, SchedulerKind::Edf];
        let parallel = run_many(&kinds, &workflows, &cluster, &config);
        for (kind, report) in &parallel {
            let solo = run_one(*kind, &workflows, &cluster, &config);
            assert_eq!(report, &solo, "{kind}");
        }
    }
}
