//! Experiment execution: run one scenario under one or many schedulers,
//! optionally in parallel across schedulers.
//!
//! These are thin convenience wrappers over the [`crate::sweep`]
//! orchestrator for the common "same scenario, several schedulers" shape.

use crate::schedulers::SchedulerKind;
use crate::sweep::{CellKey, SimSweep};
use woha_model::{SlotKind, WorkflowSpec};
use woha_sim::{run_simulation, ClusterConfig, SimConfig, SimReport};

/// Runs `workflows` on `cluster` under one scheduler kind.
pub fn run_one(
    kind: SchedulerKind,
    workflows: &[WorkflowSpec],
    cluster: &ClusterConfig,
    config: &SimConfig,
) -> SimReport {
    let total = cluster.total_slots(SlotKind::Map) + cluster.total_slots(SlotKind::Reduce);
    let mut scheduler = kind.build(total);
    run_simulation(workflows, scheduler.as_mut(), cluster, config)
}

/// Runs the same scenario under every scheduler in `kinds`, in parallel
/// (one worker thread per scheduler), returning reports in `kinds` order.
pub fn run_many(
    kinds: &[SchedulerKind],
    workflows: &[WorkflowSpec],
    cluster: &ClusterConfig,
    config: &SimConfig,
) -> Vec<(SchedulerKind, SimReport)> {
    run_many_jobs(kinds, workflows, cluster, config, kinds.len().max(1))
}

/// [`run_many`] with an explicit worker-thread budget; `jobs = 1` runs
/// the schedulers serially on the calling thread. Results are identical
/// regardless of `jobs`.
pub fn run_many_jobs(
    kinds: &[SchedulerKind],
    workflows: &[WorkflowSpec],
    cluster: &ClusterConfig,
    config: &SimConfig,
    jobs: usize,
) -> Vec<(SchedulerKind, SimReport)> {
    let mut sweep = SimSweep::new();
    sweep.push_kinds(&CellKey::new(), kinds, workflows, cluster, config);
    kinds
        .iter()
        .copied()
        .zip(sweep.run(jobs).into_reports())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenarios::{fig2_cluster, fig2_workflows};

    #[test]
    fn run_many_matches_run_one() {
        let workflows = fig2_workflows();
        let cluster = fig2_cluster();
        let config = SimConfig::default();
        let kinds = [SchedulerKind::Fifo, SchedulerKind::Edf];
        let parallel = run_many(&kinds, &workflows, &cluster, &config);
        for (kind, report) in &parallel {
            let solo = run_one(*kind, &workflows, &cluster, &config);
            assert_eq!(report, &solo, "{kind}");
        }
    }

    #[test]
    fn run_many_jobs_is_jobs_invariant() {
        let workflows = fig2_workflows();
        let cluster = fig2_cluster();
        let config = SimConfig::default();
        let kinds = [SchedulerKind::Fifo, SchedulerKind::Fair, SchedulerKind::Edf];
        let serial = run_many_jobs(&kinds, &workflows, &cluster, &config, 1);
        for jobs in [2, 8] {
            let parallel = run_many_jobs(&kinds, &workflows, &cluster, &config, jobs);
            assert_eq!(serial, parallel, "jobs={jobs}");
        }
    }
}
