//! Regenerates the paper's Fig 13(a): AssignTask throughput versus
//! workflow queue length for the DSL, BST, and naive schedulers.
//!
//! Queue lengths sweep 10^2..10^6 like the paper; pass `--quick` to stop
//! at 10^4 (the naive scheduler needs minutes beyond that). `--jobs N`
//! fans cells over N workers — defaults to 1 because concurrent
//! wall-clock cells distort each other's timings.

use std::time::Duration;
use woha_bench::experiments::throughput::{fig13a_table, run_fig13a_jobs};

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let jobs = woha_bench::jobs_flag_or(1);
    let lens: &[usize] = if quick {
        &[100, 1_000, 10_000]
    } else {
        &[100, 1_000, 10_000, 100_000, 1_000_000]
    };
    let budget = Duration::from_millis(if quick { 100 } else { 300 });
    println!("Fig 13(a) — scheduler throughput (AssignTask calls/second)\n");
    let points = run_fig13a_jobs(lens, budget, jobs);
    print!("{}", fig13a_table(&points).render());
}
