//! Node-failure resilience study: sweeps the per-node MTBF over the
//! Yahoo-like deadline workload (the Figs 8–10 scenario on the middle
//! cluster) and compares deadline-miss ratio, total tardiness, and
//! fault-subsystem disruption across EDF, FIFO, Fair and WOHA-LPF.

use woha_bench::experiments::failures::{default_mtbf_points, run_failure_sweep};
use woha_bench::scenarios::{trace_clusters, yahoo_workload, YahooScenario};
use woha_model::SimDuration;
use woha_sim::SimConfig;

fn main() {
    let scenario = YahooScenario::default();
    let workload = yahoo_workload(&scenario);
    let (label, cluster) = trace_clusters().remove(1); // 240m-240r
    let config = SimConfig {
        duration_jitter: 0.1,
        seed: scenario.seed,
        ..SimConfig::default()
    };
    let mttr = SimDuration::from_mins(5);
    let sweep = run_failure_sweep(
        workload.workflows(),
        &cluster,
        &default_mtbf_points(),
        mttr,
        &config,
    );
    println!(
        "Failure study — {} multi-job Yahoo-like workflows on {label}, \
         per-node exponential crashes (MTTR 5m, 2 missed heartbeats to detect)\n",
        sweep.workflow_count
    );
    println!("deadline-miss ratio");
    print!("{}", sweep.miss_ratio_table().render());
    println!("\ntotal tardiness (s)");
    print!("{}", sweep.tardiness_table().render());
    println!(
        "\ndisruption: node failures / tasks requeued / map outputs lost / work lost (slot-s)"
    );
    print!("{}", sweep.disruption_table().render());
}
