//! Node-failure resilience study: sweeps the per-node MTBF over the
//! Yahoo-like deadline workload (the Figs 8–10 scenario on the middle
//! cluster) twice. The reactive sweep compares EDF, FIFO, Fair and
//! WOHA-LPF with failure prediction off; the proactive sweep holds
//! WOHA-LPF fixed and climbs the prediction ladder — reactive, plan
//! padding, padding + risk-aware placement.
//!
//! Writes the machine-readable `BENCH_failure.json` and the human-readable
//! `results/failure_study.txt`, then prints the tables. Pass `--quick` for
//! the CI smoke sweep (two MTBF points); the output schema is identical.
//! `--jobs N` bounds the sweep worker pool (default: available
//! parallelism; results are identical for any N).

use std::fmt::Write as _;
use woha_bench::experiments::failures::{
    default_mtbf_points, failure_study_report, miss_ratio, run_failure_sweep, run_proactive_sweep,
    PredictionMode,
};
use woha_bench::scenarios::{trace_clusters, yahoo_workload, YahooScenario};
use woha_bench::schedulers::SchedulerKind;
use woha_model::SimDuration;
use woha_sim::SimConfig;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let jobs = woha_bench::jobs_flag_or(woha_bench::available_jobs());
    let scenario = YahooScenario::default();
    let workload = yahoo_workload(&scenario);
    let (label, cluster) = trace_clusters().remove(1); // 240m-240r
    let config = SimConfig {
        duration_jitter: 0.1,
        seed: scenario.seed,
        ..SimConfig::default()
    };
    let mttr = SimDuration::from_mins(5);
    let points = if quick {
        vec![
            ("none".to_string(), None),
            ("8h".to_string(), Some(SimDuration::from_mins(8 * 60))),
        ]
    } else {
        default_mtbf_points()
    };
    eprintln!("failure_study — reactive schedulers vs proactive WOHA-LPF under node crashes");
    let reactive = run_failure_sweep(workload.workflows(), &cluster, &points, mttr, &config, jobs);
    let proactive =
        run_proactive_sweep(workload.workflows(), &cluster, &points, mttr, &config, jobs);

    let mut text = String::new();
    writeln!(
        text,
        "Failure study — {} multi-job Yahoo-like workflows on {label}, \
         per-node exponential crashes (MTTR 5m, 2 missed heartbeats to detect)\n",
        reactive.workflow_count
    )
    .unwrap();
    writeln!(text, "deadline-miss ratio (reactive schedulers)").unwrap();
    write!(text, "{}", reactive.miss_ratio_table().render()).unwrap();
    writeln!(text, "\ntotal tardiness (s, reactive schedulers)").unwrap();
    write!(text, "{}", reactive.tardiness_table().render()).unwrap();
    writeln!(
        text,
        "\ndisruption: node failures / tasks requeued / map outputs lost / work lost (slot-s)"
    )
    .unwrap();
    write!(text, "{}", reactive.disruption_table().render()).unwrap();
    writeln!(
        text,
        "\ndeadline-miss ratio (proactive WOHA-LPF: reactive vs pad vs pad+risk)"
    )
    .unwrap();
    write!(text, "{}", proactive.miss_ratio_table().render()).unwrap();
    writeln!(text, "\ntotal tardiness (s, proactive WOHA-LPF)").unwrap();
    write!(text, "{}", proactive.tardiness_table().render()).unwrap();
    writeln!(
        text,
        "\nprediction counters: plans padded / risk-averted placements / preemptive speculations"
    )
    .unwrap();
    write!(text, "{}", proactive.prediction_table().render()).unwrap();

    let report = failure_study_report(&reactive, &proactive, quick);
    let json = serde_json::to_string_pretty(&report).expect("report serializes");
    std::fs::write("BENCH_failure.json", &json).expect("write BENCH_failure.json");
    std::fs::create_dir_all("results").expect("create results/");
    std::fs::write("results/failure_study.txt", &text).expect("write results/failure_study.txt");

    print!("{text}");

    // The headline claim: at MTBF <= 8 h, anticipating failures (pad+risk)
    // misses fewer deadlines than merely reacting to them.
    let stressed: Vec<&str> = points
        .iter()
        .filter(|(_, mtbf)| mtbf.is_some_and(|d| d <= SimDuration::from_mins(8 * 60)))
        .map(|(l, _)| l.as_str())
        .collect();
    let sum = |mode: PredictionMode| -> f64 {
        stressed
            .iter()
            .map(|l| miss_ratio(proactive.report(l, mode)))
            .sum()
    };
    let reactive_misses = sum(PredictionMode::Off);
    let proactive_misses = sum(PredictionMode::PadRisk);
    let lpf_check: f64 = stressed
        .iter()
        .map(|l| miss_ratio(reactive.report(l, SchedulerKind::WohaLpf)))
        .sum();
    assert!(
        (reactive_misses - lpf_check).abs() < 1e-12,
        "mode Off must reproduce the reactive WOHA-LPF cells"
    );
    if proactive_misses < reactive_misses {
        eprintln!(
            "PASS: pad+risk cuts summed miss ratio {reactive_misses:.3} -> {proactive_misses:.3} \
             at MTBF <= 8h"
        );
    } else {
        eprintln!(
            "WARN: pad+risk miss ratio {proactive_misses:.3} does not beat reactive \
             {reactive_misses:.3} at MTBF <= 8h"
        );
    }
    eprintln!("wrote BENCH_failure.json and results/failure_study.txt");
}
