//! Regenerates the paper's Fig 6: CDFs of task counts (a) and of the
//! within-job map/reduce count ratio (b) for the synthetic trace.

use woha_bench::experiments::tracestats::{run_trace_stats, TRACE_JOBS};

fn main() {
    let s = run_trace_stats(2024);
    println!("Fig 6 — task count statistics ({TRACE_JOBS} synthetic jobs)\n");
    println!("(a) CDF of task number:");
    print!("{}", s.fig6a_table().render());
    println!("\n(b) CDF of map number / reduce number within a job:");
    print!("{}", s.fig6b_table().render());
}
