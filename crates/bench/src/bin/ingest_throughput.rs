//! The `ingest_throughput` sweep: wall time and peak residency of feeding
//! 10³–10⁵ workflows into the pipeline through a pre-materialized
//! `VecSource` versus the lazy `GeneratorSource`.
//!
//! Writes the machine-readable `BENCH_ingest.json` and the human-readable
//! `results/ingest_throughput.txt` table, then prints the table. Pass
//! `--quick` for the CI smoke sweep (one decade, one repetition); the
//! output schema is identical.

use woha_bench::experiments::ingest::{ingest_table, run_ingest_throughput};

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let runs = if quick { 1 } else { 3 };
    eprintln!("ingest_throughput — VecSource vs GeneratorSource drain cost");
    let report = run_ingest_throughput(quick, runs);
    let table = ingest_table(&report).render();

    let json = serde_json::to_string_pretty(&report).expect("report serializes");
    std::fs::write("BENCH_ingest.json", &json).expect("write BENCH_ingest.json");
    std::fs::create_dir_all("results").expect("create results/");
    std::fs::write("results/ingest_throughput.txt", &table)
        .expect("write results/ingest_throughput.txt");

    print!("{table}");
    let worst_resident = report
        .points
        .iter()
        .filter(|p| p.source == "generator")
        .map(|p| p.peak_resident_workflows)
        .max()
        .unwrap_or(0);
    if worst_resident <= 1 {
        eprintln!("PASS: generator residency stays O(1) ({worst_resident} spec at peak)");
    } else {
        eprintln!("WARN: generator residency grew to {worst_resident} specs");
    }
    eprintln!("wrote BENCH_ingest.json and results/ingest_throughput.txt");
}
