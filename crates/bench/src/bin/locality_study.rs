//! Locality extension study: the effect of HDFS-style block placement and
//! delay scheduling (Zaharia et al., the paper's related work \[4\]) on the
//! Fig 11 scenario.
//!
//! Map tasks get 3 preferred nodes; running remotely costs a 1.3x
//! duration penalty; delay scheduling declines up to K non-local offers
//! per job.

use woha_bench::scenarios::{demo_cluster, fig11_workflows};
use woha_bench::table::{fmt_f64, Table};
use woha_core::{PriorityPolicy, WohaConfig, WohaScheduler};
use woha_sim::{run_simulation, LocalityConfig, SimConfig};

fn main() {
    let workflows = fig11_workflows();
    let cluster = demo_cluster();
    let mut t = Table::new(vec![
        "delay skips",
        "locality ratio",
        "offers declined",
        "misses",
        "W-1 span(s)",
    ]);
    for skips in [0u32, 1, 2, 4, 8] {
        let config = SimConfig {
            locality: Some(LocalityConfig {
                replicas: 3,
                remote_penalty: 1.3,
                max_delay_skips: skips,
            }),
            ..SimConfig::default()
        };
        let mut scheduler = WohaScheduler::new(WohaConfig::new(PriorityPolicy::Lpf, 96));
        let report = run_simulation(&workflows, &mut scheduler, &cluster, &config);
        t.row(vec![
            skips.to_string(),
            fmt_f64(report.map_locality_ratio()),
            report.delay_skips.to_string(),
            report.deadline_misses().to_string(),
            format!("{:.0}", report.workspans()[0].as_secs_f64()),
        ]);
    }
    println!("Locality study — Fig 11 scenario under WOHA-LPF, 3 replicas,");
    println!("1.3x remote penalty, varying delay-scheduling patience\n");
    print!("{}", t.render());
}
