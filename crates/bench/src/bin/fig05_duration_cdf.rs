//! Regenerates the paper's Fig 5: CDFs of task execution time (a) and of
//! the within-job reduce/map duration ratio (b) for the synthetic trace.

use woha_bench::experiments::tracestats::{run_trace_stats, TRACE_JOBS};

fn main() {
    let s = run_trace_stats(2024);
    println!("Fig 5 — task execution time statistics ({TRACE_JOBS} synthetic jobs)\n");
    println!("(a) CDF of task execution time:");
    print!("{}", s.fig5a_table().render());
    println!("\n(b) CDF of reduce duration / map duration within a job:");
    print!("{}", s.fig5b_table().render());
}
