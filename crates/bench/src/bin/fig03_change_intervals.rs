//! Regenerates the paper's Fig 3: histogram of intervals between
//! consecutive progress-requirement changes, over resource-capped HLF
//! plans for the Yahoo-like workload.

use woha_bench::experiments::plans::run_fig3;

fn main() {
    let r = run_fig3(20140614, 400);
    println!(
        "Fig 3 — progress requirement change intervals ({} intervals)\n",
        r.intervals
    );
    print!("{}", r.table().render());
    println!("\npaper reference: all intervals > 10 ms; >99% > 10 s (their trace);");
    println!("our second-granularity estimates put all intervals >= 1 s, most >= 10 s.");
}
