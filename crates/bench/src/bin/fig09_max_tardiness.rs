//! Regenerates the paper's Fig 9: maximum tardiness over the Yahoo-like
//! workload, per cluster size and scheduler.

use woha_bench::experiments::deadline::run_trace_sweep;
use woha_bench::scenarios::YahooScenario;

fn main() {
    let sweep = run_trace_sweep(&YahooScenario::default(), 0.1);
    println!(
        "Fig 9 — max tardiness in seconds ({} multi-job Yahoo-like workflows)\n",
        sweep.workflow_count
    );
    print!("{}", sweep.fig9_table().render());
}
