//! Regenerates the paper's Fig 11: workspans of the three Fig-7 workflows
//! under the six schedulers on the 32-slave demo cluster. `--jobs N`
//! bounds the worker pool (default: available parallelism; results are
//! identical for any N).

fn main() {
    let jobs = woha_bench::jobs_flag_or(woha_bench::available_jobs());
    let result = woha_bench::experiments::demo::run_fig11_jobs(false, jobs);
    println!("Fig 11 — synthetic workflow workspans (32 slaves: 64 map + 32 reduce slots)");
    println!(
        "relative deadlines: W-1 {}, W-2 {}, W-3 {} ('*' = deadline missed)\n",
        result.relative_deadlines[0], result.relative_deadlines[1], result.relative_deadlines[2]
    );
    print!("{}", result.table().render());
}
