//! Regenerates the paper's Fig 11: workspans of the three Fig-7 workflows
//! under the six schedulers on the 32-slave demo cluster.

fn main() {
    let result = woha_bench::experiments::demo::run_fig11(false);
    println!("Fig 11 — synthetic workflow workspans (32 slaves: 64 map + 32 reduce slots)");
    println!(
        "relative deadlines: W-1 {}, W-2 {}, W-3 {} ('*' = deadline missed)\n",
        result.relative_deadlines[0], result.relative_deadlines[1], result.relative_deadlines[2]
    );
    print!("{}", result.table().render());
}
