//! The sweep-orchestrator benchmark and identity check: runs one
//! multi-cell scenario grid twice — serially (`--jobs 1`) and fanned
//! over the worker pool — asserts the aggregated canonical JSON is
//! **byte-identical**, and records both wall times.
//!
//! Writes the machine-readable `BENCH_sweep.json` perf record and the
//! human-readable `results/sweep_bench.txt`. Pass `--quick` for the CI
//! smoke grid (8 cells of the Fig 11 scenario under node faults); the
//! full grid is the Figs 8–10 Yahoo sweep (18 cells). `--jobs N` sets
//! the parallel leg's worker count (default: available parallelism,
//! floored at 2 so the identity check always crosses threads).

use serde::Serialize;
use std::fmt::Write as _;
use woha_bench::experiments::failures::SCHEDULERS;
use woha_bench::scenarios::{
    demo_cluster, fig11_workflows, trace_clusters, yahoo_workload, YahooScenario,
};
use woha_bench::sweep::{available_jobs, jobs_flag_or, CellKey, SimSweep, SimSweepRun};
use woha_bench::SchedulerKind;
use woha_model::SimDuration;
use woha_sim::{FaultConfig, SimConfig};

/// One cell's serial-vs-parallel wall time in `BENCH_sweep.json`.
#[derive(Serialize)]
struct CellRecord {
    cell: String,
    serial_ms: f64,
    parallel_ms: f64,
}

/// The `BENCH_sweep.json` schema.
#[derive(Serialize)]
struct SweepBenchReport {
    experiment: String,
    quick: bool,
    /// Available hardware parallelism where the record was produced. A
    /// speedup near 1.0 with `cores = 1` is expected, not a regression.
    cores: u64,
    cell_count: u64,
    serial_jobs: u64,
    serial_wall_ms: f64,
    parallel_jobs: u64,
    parallel_wall_ms: f64,
    /// `serial_wall_ms / parallel_wall_ms`.
    speedup: f64,
    /// Whether the two legs' canonical aggregated JSON matched byte for
    /// byte (the run aborts before writing this report if they do not).
    identical: bool,
    cells: Vec<CellRecord>,
}

fn quick_grid(workflows: &[woha_model::WorkflowSpec]) -> SimSweep<'_> {
    // The failure-study shape in miniature: 2 MTBF points × 4 schedulers
    // on the 32-slave demo cluster = 8 cells.
    let cluster = demo_cluster();
    let config = SimConfig {
        duration_jitter: 0.1,
        seed: 7,
        ..SimConfig::default()
    };
    let mttr = SimDuration::from_mins(3);
    let mut sweep = SimSweep::new();
    for (label, mtbf) in [("none", None), ("12m", Some(SimDuration::from_mins(12)))] {
        let faulty = match mtbf {
            Some(mtbf) => cluster
                .clone()
                .with_faults(FaultConfig::with_mtbf(mtbf, mttr)),
            None => cluster.clone(),
        };
        sweep.push_kinds(
            &CellKey::new().with("mtbf", label),
            &SCHEDULERS,
            workflows,
            &faulty,
            &config,
        );
    }
    sweep
}

fn full_grid<'w>(workflows: &'w [woha_model::WorkflowSpec], seed: u64) -> SimSweep<'w> {
    // The Figs 8–10 grid: 3 cluster sizes × 6 schedulers = 18 cells.
    let config = SimConfig {
        duration_jitter: 0.1,
        seed,
        ..SimConfig::default()
    };
    let mut sweep = SimSweep::new();
    for (label, cluster) in trace_clusters() {
        sweep.push_kinds(
            &CellKey::new().with("cluster", &label),
            &SchedulerKind::ALL,
            workflows,
            &cluster,
            &config,
        );
    }
    sweep
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let cores = available_jobs();
    let parallel_jobs = jobs_flag_or(cores.max(2));

    let scenario = YahooScenario::default();
    let fig11 = fig11_workflows();
    let workload;
    let sweep = if quick {
        quick_grid(&fig11)
    } else {
        workload = yahoo_workload(&scenario);
        full_grid(workload.workflows(), scenario.seed)
    };

    eprintln!(
        "sweep_bench — {} cells, serial vs {parallel_jobs} workers on {cores} core(s)",
        sweep.len()
    );
    let serial = sweep.run(1);
    let parallel = sweep.run(parallel_jobs);

    let serial_json = serial.canonical_json();
    let parallel_json = parallel.canonical_json();
    assert_eq!(
        serial_json, parallel_json,
        "parallel sweep output must be byte-identical to the serial run"
    );

    let wall_ms = |r: &SimSweepRun| r.wall.as_secs_f64() * 1e3;
    let speedup = wall_ms(&serial) / wall_ms(&parallel).max(1e-9);
    let report = SweepBenchReport {
        experiment: "sweep_bench".to_string(),
        quick,
        cores: cores as u64,
        cell_count: serial.cells.len() as u64,
        serial_jobs: serial.jobs as u64,
        serial_wall_ms: wall_ms(&serial),
        parallel_jobs: parallel.jobs as u64,
        parallel_wall_ms: wall_ms(&parallel),
        speedup,
        identical: true,
        cells: serial
            .timings
            .iter()
            .zip(&parallel.timings)
            .map(|(s, p)| CellRecord {
                cell: s.label.clone(),
                serial_ms: s.wall.as_secs_f64() * 1e3,
                parallel_ms: p.wall.as_secs_f64() * 1e3,
            })
            .collect(),
    };

    let mut text = String::new();
    writeln!(
        text,
        "Sweep orchestrator — {} cells, {} core(s): serial {:.0} ms, \
         {} workers {:.0} ms, speedup {:.2}x, outputs byte-identical\n",
        report.cell_count,
        report.cores,
        report.serial_wall_ms,
        report.parallel_jobs,
        report.parallel_wall_ms,
        report.speedup
    )
    .unwrap();
    writeln!(
        text,
        "cell                                serial(ms)  parallel(ms)"
    )
    .unwrap();
    for c in &report.cells {
        writeln!(
            text,
            "{:<36}{:>10.0}{:>14.0}",
            c.cell, c.serial_ms, c.parallel_ms
        )
        .unwrap();
    }

    let json = serde_json::to_string_pretty(&report).expect("report serializes");
    std::fs::write("BENCH_sweep.json", &json).expect("write BENCH_sweep.json");
    std::fs::create_dir_all("results").expect("create results/");
    std::fs::write("results/sweep_bench.txt", &text).expect("write results/sweep_bench.txt");

    print!("{text}");
    if cores >= 2 && speedup > 1.5 {
        eprintln!("PASS: {speedup:.2}x speedup with {parallel_jobs} workers on {cores} cores");
    } else if cores >= 2 {
        eprintln!("WARN: speedup {speedup:.2}x with {parallel_jobs} workers on {cores} cores");
    } else {
        eprintln!("PASS: outputs byte-identical; speedup {speedup:.2}x not meaningful on 1 core");
    }
    eprintln!("wrote BENCH_sweep.json and results/sweep_bench.txt");
}
