//! Master-node scheduling overhead (§V: WOHA "adds negligible overhead to
//! the master node"): mean wall-clock time per AssignTask consultation
//! during the full Fig 11 run, per scheduler.

use woha_bench::scenarios::{demo_cluster, fig11_workflows};
use woha_bench::table::Table;
use woha_bench::{run_one, SchedulerKind};
use woha_sim::SimConfig;

fn main() {
    let workflows = fig11_workflows();
    let cluster = demo_cluster();
    let config = SimConfig::default();
    let mut t = Table::new(vec![
        "scheduler",
        "assign calls",
        "mean ns/call",
        "total scheduler ms",
    ]);
    for kind in SchedulerKind::ALL {
        let report = run_one(kind, &workflows, &cluster, &config);
        t.row(vec![
            kind.to_string(),
            report.assign_calls.to_string(),
            format!("{:.0}", report.mean_assign_nanos()),
            format!("{:.1}", report.scheduler_nanos as f64 / 1e6),
        ]);
    }
    println!("Master scheduling overhead — Fig 11 scenario (~80 min simulated)\n");
    print!("{}", t.render());
    println!("\nWOHA's extra bookkeeping must stay within the same order of");
    println!("magnitude as the baselines for the paper's scalability story.");
}
