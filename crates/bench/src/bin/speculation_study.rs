//! Speculative-execution extension study: straggler injection on the
//! Fig 11 scenario under WOHA-LPF, with and without speculation.

use woha_bench::scenarios::{demo_cluster, fig11_workflows};
use woha_bench::table::Table;
use woha_core::{PriorityPolicy, WohaConfig, WohaScheduler};
use woha_sim::{run_simulation, SimConfig, SpeculationConfig};

fn main() {
    let workflows = fig11_workflows();
    let cluster = demo_cluster();
    let mut t = Table::new(vec![
        "speculation",
        "stragglers",
        "duplicates",
        "dup wins",
        "total tardiness(s)",
        "makespan(s)",
    ]);
    for &speculate in &[false, true] {
        let config = SimConfig {
            speculation: Some(SpeculationConfig {
                straggler_prob: 0.02,
                straggler_factor: 3.0,
                speculate_after: if speculate { 1.4 } else { 1e9 },
            }),
            seed: 14,
            ..SimConfig::default()
        };
        let mut scheduler = WohaScheduler::new(WohaConfig::new(PriorityPolicy::Lpf, 96));
        let report = run_simulation(&workflows, &mut scheduler, &cluster, &config);
        t.row(vec![
            if speculate { "on" } else { "off" }.to_string(),
            report.stragglers.to_string(),
            report.speculative_launched.to_string(),
            report.speculative_wins.to_string(),
            format!("{:.0}", report.total_tardiness().as_secs_f64()),
            format!("{:.0}", report.end_time.as_secs_f64()),
        ]);
    }
    println!("Speculative execution — Fig 11 under WOHA-LPF with 2% stragglers (3x slower)\n");
    print!("{}", t.render());
}
