//! The `obs_overhead` sweep: wall-clock overhead of the observability
//! layer (structured tracing + metrics) on end-to-end Yahoo-trace
//! simulations, per priority-index backend.
//!
//! Writes the machine-readable `BENCH_obs.json` overhead baseline and the
//! human-readable `results/obs_overhead.txt` table, then prints the table.
//! Pass `--quick` for the CI smoke sweep (Fig 11 workload, one repetition);
//! the output schema is identical.

use woha_bench::experiments::obs::{obs_overhead_table, run_obs_overhead, OVERHEAD_BOUND_PCT};

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let runs = if quick { 1 } else { 3 };
    eprintln!("obs_overhead — observability off/on wall-time per index backend");
    let report = run_obs_overhead(quick, runs);
    let table = obs_overhead_table(&report).render();

    let json = serde_json::to_string_pretty(&report).expect("report serializes");
    std::fs::write("BENCH_obs.json", &json).expect("write BENCH_obs.json");
    std::fs::create_dir_all("results").expect("create results/");
    std::fs::write("results/obs_overhead.txt", &table).expect("write results/obs_overhead.txt");

    print!("{table}");
    let worst = report
        .points
        .iter()
        .map(|p| p.overhead_pct)
        .fold(f64::NEG_INFINITY, f64::max);
    if worst <= OVERHEAD_BOUND_PCT {
        eprintln!("PASS: worst enabled-path overhead {worst:+.1}% <= bound {OVERHEAD_BOUND_PCT}%");
    } else {
        eprintln!("WARN: worst enabled-path overhead {worst:+.1}% > bound {OVERHEAD_BOUND_PCT}%");
    }
    eprintln!("wrote BENCH_obs.json and results/obs_overhead.txt");
}
