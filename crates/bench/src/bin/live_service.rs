//! The `live_service` sweep: sustained arrival throughput and
//! submit-to-plan latency (p50/p99) of the long-running scheduler service
//! at 1–8 tenants, on a sped-up wall clock (DESIGN.md §13).
//!
//! Writes the machine-readable `BENCH_serve.json` and the human-readable
//! `results/live_service.txt` table, then prints the table. Pass
//! `--quick` for the CI smoke sweep (two tenant counts, 30 workflows);
//! the output schema is identical.

use woha_bench::experiments::service::{run_live_service, service_table};

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    eprintln!("live_service — service throughput and plan latency vs tenant count");
    let report = run_live_service(quick);
    let table = service_table(&report).render();

    let json = serde_json::to_string_pretty(&report).expect("report serializes");
    std::fs::write("BENCH_serve.json", &json).expect("write BENCH_serve.json");
    std::fs::create_dir_all("results").expect("create results/");
    std::fs::write("results/live_service.txt", &table).expect("write results/live_service.txt");

    print!("{table}");
    let clean = report
        .points
        .iter()
        .all(|p| p.shed == 0 && p.rejected == 0 && p.arrivals == p.submitted);
    if clean {
        eprintln!("PASS: every submitted workflow was admitted and planned");
    } else {
        eprintln!("WARN: arrivals were shed or rejected under generous caps");
    }
    eprintln!("wrote BENCH_serve.json and results/live_service.txt");
}
