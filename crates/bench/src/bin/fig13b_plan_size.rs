//! Regenerates the paper's Fig 13(b): scheduling plan size versus number
//! of tasks, for the MPF/LPF/HLF job prioritization policies.

use woha_bench::experiments::plans::{fig13b_table, run_fig13b};

fn main() {
    let points = run_fig13b(20140614, 64);
    println!("Fig 13(b) — scheduling plan size (bytes) vs workflow task count\n");
    print!("{}", fig13b_table(&points).render());
    let max = points
        .iter()
        .map(|p| *p.bytes.iter().max().unwrap())
        .max()
        .unwrap();
    println!(
        "\nlargest plan: {} bytes (paper: <= 7 KB at 1400+ tasks, mostly < 2 KB)",
        max
    );
}
