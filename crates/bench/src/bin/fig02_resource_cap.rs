//! Regenerates the paper's Fig 2: the resource-capped scheduling plan
//! example — three identical two-job workflows with deadlines 9 s / 9 s /
//! 50 s on a 3-map + 3-reduce cluster.

use woha_bench::experiments::plans::{run_fig2, run_fig2_baselines};

fn main() {
    let r = run_fig2();
    println!("Fig 2 — benefits of the resource-capped scheduling plan");
    println!("cluster: 3 map + 3 reduce slots; '*' = deadline missed\n");
    print!("{}", r.table().render());
    println!("\ncaps chosen by the binary search: uncapped plans use the full 6 slots;");
    println!("capped plans use the smallest cap meeting each deadline (2 for W1/W2).\n");
    println!("For context, the ported baselines on the same scenario:");
    for (kind, report) in run_fig2_baselines() {
        println!(
            "  {kind}: {} of 3 deadlines missed",
            report.deadline_misses()
        );
    }
}
