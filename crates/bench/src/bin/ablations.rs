//! Ablation studies of WOHA's design choices (DESIGN.md §5): the resource
//! cap, the plan safety slack, and the heartbeat interval, all on the
//! Fig 11 scenario.

use woha_bench::experiments::ablation::{
    cap_ablation, heartbeat_ablation, replan_ablation, slack_ablation,
};

fn main() {
    println!("Ablation 1 — resource cap mode (Fig 11 scenario, WOHA-LPF)\n");
    print!("{}", cap_ablation().render());
    println!("\nAblation 2 — plan safety slack\n");
    print!("{}", slack_ablation().render());
    println!("\nAblation 3 — TaskTracker heartbeat interval\n");
    print!("{}", heartbeat_ablation().render());
    println!("\nAblation 4 — mid-flight replanning under 25% estimation error\n");
    print!("{}", replan_ablation(0.25, 0..6).render());
}
