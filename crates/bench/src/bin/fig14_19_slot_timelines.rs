//! Regenerates the paper's Figs 14-19: per-workflow slot-allocation
//! timelines of the Fig 11 scenario under all six schedulers, rendered as
//! sparkline panels (full numeric tables with `--table`).
//!
//! Pass a scheduler name (EDF, FIFO, Fair, WOHA-LPF, WOHA-HLF, WOHA-MPF)
//! to print just that panel; default prints all six.

use woha_bench::chart::panel;
use woha_bench::experiments::demo::{run_fig11, timeline_table};
use woha_model::{SlotKind, WorkflowId};
use woha_sim::SimReport;

fn spark_panel(report: &SimReport, kind: SlotKind, max: u32) -> String {
    let timelines = report.timelines.as_ref().expect("timelines tracked");
    let rows: Vec<(String, Vec<u32>)> = report
        .outcomes
        .iter()
        .enumerate()
        .map(|(i, o)| {
            (
                o.name.clone(),
                timelines.series(WorkflowId::new(i as u64), kind).to_vec(),
            )
        })
        .collect();
    let borrowed: Vec<(&str, &[u32])> = rows
        .iter()
        .map(|(l, s)| (l.as_str(), s.as_slice()))
        .collect();
    panel(&borrowed, max, 100)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let table_mode = args.iter().any(|a| a == "--table");
    let filter: Option<&String> = args.iter().find(|a| !a.starts_with("--"));

    let result = run_fig11(true);
    println!("Figs 14-19 — slot allocation over time (one column ≈ 55s; scale:");
    println!("map rows 0..64 slots, reduce rows 0..32 slots)\n");
    for (kind, report) in &result.reports {
        let name = kind.to_string();
        if let Some(f) = filter {
            if !name.eq_ignore_ascii_case(f) {
                continue;
            }
        }
        if table_mode {
            println!("=== {name}: map slots per workflow over time ===");
            print!("{}", timeline_table(report, SlotKind::Map).render());
            println!("=== {name}: reduce slots per workflow over time ===");
            print!("{}", timeline_table(report, SlotKind::Reduce).render());
        } else {
            println!("=== {name} ===");
            println!("map slots:");
            print!("{}", spark_panel(report, SlotKind::Map, 64));
            println!("reduce slots:");
            print!("{}", spark_panel(report, SlotKind::Reduce, 32));
        }
        println!();
    }
}
