//! Regenerates the paper's Fig 8: deadline-miss ratio over the Yahoo-like
//! workload, per cluster size and scheduler. `--jobs N` bounds the sweep
//! worker pool (default: available parallelism; results are identical
//! for any N).

use woha_bench::experiments::deadline::run_trace_sweep_jobs;
use woha_bench::scenarios::YahooScenario;

fn main() {
    let jobs = woha_bench::jobs_flag_or(woha_bench::available_jobs());
    let sweep = run_trace_sweep_jobs(&YahooScenario::default(), 0.1, jobs);
    println!(
        "Fig 8 — deadline miss ratio ({} multi-job Yahoo-like workflows)\n",
        sweep.workflow_count
    );
    print!("{}", sweep.fig8_table().render());
}
