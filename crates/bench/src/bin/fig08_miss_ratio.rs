//! Regenerates the paper's Fig 8: deadline-miss ratio over the Yahoo-like
//! workload, per cluster size and scheduler.

use woha_bench::experiments::deadline::run_trace_sweep;
use woha_bench::scenarios::YahooScenario;

fn main() {
    let sweep = run_trace_sweep(&YahooScenario::default(), 0.1);
    println!(
        "Fig 8 — deadline miss ratio ({} multi-job Yahoo-like workflows)\n",
        sweep.workflow_count
    );
    print!("{}", sweep.fig8_table().render());
}
