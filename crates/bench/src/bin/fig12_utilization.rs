//! Regenerates the paper's Fig 12: cluster utilization of the demo
//! workload with 3 recurrences, per scheduler.

use woha_bench::experiments::demo::run_fig12;

fn main() {
    let r = run_fig12();
    println!("Fig 12 — cluster utilization with 3 recurrences (32-slave demo cluster)\n");
    print!("{}", r.table().render());
}
