//! Regenerates the paper's Fig 12: cluster utilization of the demo
//! workload with 3 recurrences, per scheduler. `--jobs N` bounds the
//! worker pool (default: available parallelism; results are identical
//! for any N).

use woha_bench::experiments::demo::run_fig12_jobs;

fn main() {
    let jobs = woha_bench::jobs_flag_or(woha_bench::available_jobs());
    let r = run_fig12_jobs(jobs);
    println!("Fig 12 — cluster utilization with 3 recurrences (32-slave demo cluster)\n");
    print!("{}", r.table().render());
}
