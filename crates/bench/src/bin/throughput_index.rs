//! The `throughput_index` sweep: AssignTask throughput of the three
//! `PriorityIndex` backends (DSL, BTree, pairing heap) over queue lengths
//! 10³–10⁵, extending the paper's Fig 13(a) comparison.
//!
//! Writes the machine-readable `BENCH_throughput.json` perf baseline and
//! the human-readable `results/throughput_index.txt` table, then prints
//! the table. Pass `--quick` for the CI smoke sweep (10²–10³, short
//! budgets); the output schema is identical. `--jobs N` fans cells over
//! N workers — it defaults to 1 because concurrent wall-clock cells on
//! shared cores distort each other; raise it only on idle many-core
//! machines.

use std::time::Duration;
use woha_bench::experiments::throughput::{run_throughput_index_jobs, throughput_index_table};

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let jobs = woha_bench::jobs_flag_or(1);
    let lens: &[usize] = if quick {
        &[100, 1_000]
    } else {
        &[1_000, 10_000, 100_000]
    };
    let budget = Duration::from_millis(if quick { 20 } else { 300 });
    eprintln!("throughput_index — PriorityIndex backend throughput (AssignTask calls/second)");
    let report = run_throughput_index_jobs(lens, budget, jobs);
    let table = throughput_index_table(&report).render();

    let json = serde_json::to_string_pretty(&report).expect("report serializes");
    std::fs::write("BENCH_throughput.json", &json).expect("write BENCH_throughput.json");
    std::fs::create_dir_all("results").expect("create results/");
    std::fs::write("results/throughput_index.txt", &table)
        .expect("write results/throughput_index.txt");

    print!("{table}");
    eprintln!("wrote BENCH_throughput.json and results/throughput_index.txt");
}
