//! Master-failover recovery study: injects one JobTracker crash into the
//! Fig 11 scenario, swept over checkpoint interval × crash time, and
//! compares the deadline damage and recovery work across EDF, FIFO, Fair
//! and WOHA-LPF — once with the write-ahead log (lossless recovery) and
//! once recovering from the last checkpoint alone.
//!
//! `--jobs N` bounds the sweep worker pool (default: available
//! parallelism; results are identical for any N).

use woha_bench::experiments::master_failover::run_failover_sweep;
use woha_bench::scenarios::{demo_cluster, fig11_workflows};
use woha_model::{SimDuration, SimTime};
use woha_sim::SimConfig;

fn main() {
    let jobs = woha_bench::jobs_flag_or(woha_bench::available_jobs());
    let workflows = fig11_workflows();
    let cluster = demo_cluster();
    let config = SimConfig {
        duration_jitter: 0.1,
        seed: 7,
        ..SimConfig::default()
    };
    let intervals = vec![
        ("1m".to_string(), SimDuration::from_mins(1)),
        ("5m".to_string(), SimDuration::from_mins(5)),
        ("15m".to_string(), SimDuration::from_mins(15)),
    ];
    let crashes = vec![
        ("10m".to_string(), SimTime::from_mins(10)),
        ("30m".to_string(), SimTime::from_mins(30)),
        ("60m".to_string(), SimTime::from_mins(60)),
    ];
    let mttr = SimDuration::from_mins(2);
    for (wal, label) in [
        (true, "write-ahead log (lossless recovery)"),
        (false, "checkpoint-only recovery (WAL disabled)"),
    ] {
        let sweep = run_failover_sweep(
            &workflows, &cluster, &intervals, &crashes, mttr, wal, &config, jobs,
        );
        println!(
            "Master failover — {} Fig 11 workflows on 32x2x1, one scripted \
             JobTracker crash, restart {mttr}, {label}\n",
            sweep.workflow_count
        );
        println!("deadline misses attributable to the outage (vs crash-free run)");
        print!("{}", sweep.miss_delta_table().render());
        println!("\nextra total tardiness (s) vs crash-free run");
        print!("{}", sweep.tardiness_delta_table().render());
        println!(
            "\nrecovery work: attempts readopted / requeued / orphaned / WAL records replayed"
        );
        print!("{}", sweep.recovery_table().render());
        println!();
    }
}
