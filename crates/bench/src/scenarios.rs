//! The canonical experiment scenarios of the paper's evaluation.

use woha_model::{JobSpec, SimDuration, SimTime, WorkflowBuilder, WorkflowSpec};
use woha_sim::ClusterConfig;
use woha_trace::topology::paper_fig7;
use woha_trace::workload::{DeadlineRule, ReleasePattern, Workload};
use woha_trace::yahoo::{yahoo_workflows, YahooTraceConfig};
use woha_trace::Rng;

/// The Fig 2 scenario: three identical two-job workflows (each job 3 maps
/// × 1 s + 3 reduces × 1 s) submitted at time 0 with deadlines 9 s, 9 s and
/// 50 s, on a cluster of 3 map and 3 reduce slots.
pub fn fig2_workflows() -> Vec<WorkflowSpec> {
    let deadlines = [9u64, 9, 50];
    deadlines
        .iter()
        .enumerate()
        .map(|(i, &d)| {
            let mut b = WorkflowBuilder::new(format!("W{}", i + 1));
            let j1 = b.add_job(JobSpec::new(
                "j1",
                3,
                3,
                SimDuration::from_secs(1),
                SimDuration::from_secs(1),
            ));
            let j2 = b.add_job(JobSpec::new(
                "j2",
                3,
                3,
                SimDuration::from_secs(1),
                SimDuration::from_secs(1),
            ));
            b.add_dependency(j1, j2);
            b.relative_deadline(SimDuration::from_secs(d));
            b.build().expect("fig2 workflow is valid")
        })
        .collect()
}

/// The Fig 2 cluster: 3 map slots and 3 reduce slots.
pub fn fig2_cluster() -> ClusterConfig {
    ClusterConfig::uniform(3, 1, 1)
}

/// The demo cluster of §VI-A: 32 slaves, 2 map slots and 1 reduce slot
/// each.
pub fn demo_cluster() -> ClusterConfig {
    ClusterConfig::uniform(32, 2, 1)
}

/// The Fig 11 scenario: three instances of the Fig 7 topology, submitted
/// at 0, 5 and 10 minutes with relative deadlines 80, 70 and 60 minutes
/// ("workflows with larger release time have to meet earlier deadline").
pub fn fig11_workflows() -> Vec<WorkflowSpec> {
    let releases = [0u64, 5, 10];
    let rel_deadlines = [80u64, 70, 60];
    releases
        .iter()
        .zip(&rel_deadlines)
        .enumerate()
        .map(|(i, (&rel, &dl))| {
            paper_fig7(format!("W-{}", i + 1))
                .submit_at(SimTime::from_mins(rel))
                .relative_deadline(SimDuration::from_mins(dl))
                .build()
                .expect("fig7 workflow is valid")
        })
        .collect()
}

/// The Fig 12 scenario: the Fig 11 workload repeated for `recurrences`
/// back-to-back periods (the paper's "3 recurrence" utilization run).
/// Recurrence `k` releases its three workflows 30 minutes later than
/// recurrence `k-1`.
pub fn fig12_workflows(recurrences: u32) -> Vec<WorkflowSpec> {
    let base = fig11_workflows();
    let period = SimDuration::from_mins(30);
    (0..recurrences)
        .flat_map(|k| {
            let offset = period * u64::from(k);
            base.iter()
                .map(move |w| {
                    w.reissued(
                        format!("{}-r{}", w.name(), k + 1),
                        w.submit_time() + offset,
                        w.deadline() + offset,
                    )
                })
                .collect::<Vec<_>>()
        })
        .collect()
}

/// Parameters of the Yahoo-trace deadline experiments (Figs 8–10).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct YahooScenario {
    /// Workload seed.
    pub seed: u64,
    /// Reference capacity for the deadline feasibility floor.
    pub reference_slots: u32,
    /// Smallest SLA-style relative deadline.
    pub deadline_min: SimDuration,
    /// Largest SLA-style relative deadline.
    pub deadline_max: SimDuration,
    /// Feasibility floor multiplier over the workflow's lower bound.
    pub floor_stretch: f64,
    /// Window over which the 46 multi-job workflows are released.
    pub release_window: SimDuration,
}

impl Default for YahooScenario {
    fn default() -> Self {
        YahooScenario {
            seed: 20140614, // ICDCS 2014 conference date
            // Deadlines are SLA-style: drawn independently of workflow
            // size (a business due time), floored at a feasible multiple
            // of the workflow's own lower bound on a fair-share reference
            // capacity. The release window spreads the load so the middle
            // cluster size sits in the paper's "less than adequate but
            // more than scarce" regime.
            reference_slots: 100,
            deadline_min: SimDuration::from_mins(4),
            deadline_max: SimDuration::from_mins(12),
            floor_stretch: 1.4,
            release_window: SimDuration::from_mins(14),
        }
    }
}

/// Builds the Yahoo workload of §VI-A: 61 workflows / 180 jobs generated
/// from the published trace statistics, single-job workflows removed (as
/// the paper does), with releases and deadlines assigned per `scenario`.
pub fn yahoo_workload(scenario: &YahooScenario) -> Workload {
    let mut rng = Rng::new(scenario.seed);
    // Job sizes are moderated relative to the raw 4000-job trace: the
    // paper's own Fig 13(b) shows its 61 workflows top out near 1450 tasks
    // (~120 tasks/job over 12 jobs), so the monsters of the full trace
    // (3000-mapper jobs) do not appear inside workflows.
    let config = YahooTraceConfig {
        map_count_max: 200,
        reduce_count_max: 40,
        ..YahooTraceConfig::default()
    };
    let flows = yahoo_workflows(&config, &mut rng);
    Workload::assign(
        &flows,
        ReleasePattern::UniformWindow(scenario.release_window),
        DeadlineRule::UniformRelative {
            min: scenario.deadline_min,
            max: scenario.deadline_max,
            floor_stretch: scenario.floor_stretch,
            reference_slots: scenario.reference_slots,
        },
        &mut rng,
    )
    .without_single_jobs()
}

/// The three cluster sizes of Figs 8–10.
pub fn trace_clusters() -> Vec<(String, ClusterConfig)> {
    [(200, 200), (240, 240), (280, 280)]
        .into_iter()
        .map(|(m, r)| (format!("{m}m-{r}r"), ClusterConfig::with_totals(m, r)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use woha_model::SlotKind;

    #[test]
    fn fig2_matches_paper_parameters() {
        let ws = fig2_workflows();
        assert_eq!(ws.len(), 3);
        assert_eq!(ws[0].deadline(), SimTime::from_secs(9));
        assert_eq!(ws[2].deadline(), SimTime::from_secs(50));
        assert_eq!(ws[0].total_tasks(), 12);
        let c = fig2_cluster();
        assert_eq!(c.total_slots(SlotKind::Map), 3);
        assert_eq!(c.total_slots(SlotKind::Reduce), 3);
    }

    #[test]
    fn fig11_matches_paper_parameters() {
        let ws = fig11_workflows();
        assert_eq!(ws.len(), 3);
        assert_eq!(ws[0].job_count(), 33);
        assert_eq!(ws[1].submit_time(), SimTime::from_mins(5));
        assert_eq!(ws[1].deadline(), SimTime::from_mins(75));
        // W-3 has the latest release and earliest absolute deadline.
        assert_eq!(ws[2].deadline(), SimTime::from_mins(70));
        let c = demo_cluster();
        assert_eq!(c.total_slots(SlotKind::Map), 64);
        assert_eq!(c.total_slots(SlotKind::Reduce), 32);
    }

    #[test]
    fn fig12_recurrences_shift() {
        let ws = fig12_workflows(3);
        assert_eq!(ws.len(), 9);
        assert_eq!(ws[3].submit_time(), SimTime::from_mins(30));
        assert_eq!(ws[8].submit_time(), SimTime::from_mins(70));
        assert_eq!(ws[8].relative_deadline(), SimDuration::from_mins(60));
    }

    #[test]
    fn yahoo_workload_shape() {
        let w = yahoo_workload(&YahooScenario::default());
        assert_eq!(w.len(), 46);
        assert_eq!(w.total_jobs(), 165);
        // Deterministic per seed.
        let w2 = yahoo_workload(&YahooScenario::default());
        assert_eq!(w.workflows(), w2.workflows());
        // Everything has a real deadline.
        assert!(w.workflows().iter().all(|x| x.deadline() != SimTime::MAX));
        // The streaming source view yields the same workflows, ordered by
        // submit time (the driver's pull order).
        let drained = woha_trace::drain(&mut w2.into_source());
        assert_eq!(drained.len(), w.len());
        assert!(drained
            .windows(2)
            .all(|p| p[0].submit_time() <= p[1].submit_time()));
    }

    #[test]
    fn trace_clusters_sizes() {
        let cs = trace_clusters();
        assert_eq!(cs.len(), 3);
        assert_eq!(cs[0].0, "200m-200r");
        assert_eq!(cs[2].1.total_slots(SlotKind::Map), 280);
    }
}
