//! Tiny ASCII chart rendering for slot-allocation timelines (Figs 14–19).

/// Unicode block ramp used for vertical resolution.
const RAMP: [char; 9] = [' ', '▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];

/// Renders `series` as a single sparkline row scaled to `max` (values are
/// clamped). An empty series renders as an empty string.
///
/// # Examples
///
/// ```
/// use woha_bench::chart::sparkline;
/// let s = sparkline(&[0, 2, 4, 8], 8);
/// assert_eq!(s.chars().count(), 4);
/// assert!(s.ends_with('█'));
/// assert!(s.starts_with(' '));
/// ```
pub fn sparkline(series: &[u32], max: u32) -> String {
    let max = max.max(1);
    series
        .iter()
        .map(|&v| {
            let clamped = v.min(max);
            let idx = (u64::from(clamped) * (RAMP.len() as u64 - 1)).div_ceil(u64::from(max));
            RAMP[idx as usize]
        })
        .collect()
}

/// Downsamples `series` to at most `width` points by taking the maximum of
/// each bucket (peaks matter for slot-allocation plots).
pub fn downsample_max(series: &[u32], width: usize) -> Vec<u32> {
    if width == 0 || series.is_empty() {
        return Vec::new();
    }
    if series.len() <= width {
        return series.to_vec();
    }
    (0..width)
        .map(|i| {
            let lo = i * series.len() / width;
            let hi = ((i + 1) * series.len() / width).max(lo + 1);
            series[lo..hi].iter().copied().max().unwrap_or(0)
        })
        .collect()
}

/// Renders a labelled multi-row panel: one sparkline per `(label, series)`
/// pair, all scaled to the shared `max`, downsampled to `width` columns.
pub fn panel(rows: &[(&str, &[u32])], max: u32, width: usize) -> String {
    let label_width = rows.iter().map(|(l, _)| l.len()).max().unwrap_or(0);
    let mut out = String::new();
    for (label, series) in rows {
        let compact = downsample_max(series, width);
        out.push_str(&format!(
            "{label:<label_width$} |{}|\n",
            sparkline(&compact, max)
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sparkline_scales_to_max() {
        let s: Vec<char> = sparkline(&[0, 4, 8], 8).chars().collect();
        assert_eq!(s[0], ' ');
        assert_eq!(s[2], '█');
        // Midpoint lands mid-ramp.
        assert!(s[1] != ' ' && s[1] != '█');
    }

    #[test]
    fn sparkline_clamps_overflow() {
        let s = sparkline(&[100], 8);
        assert_eq!(s, "█");
    }

    #[test]
    fn sparkline_empty() {
        assert_eq!(sparkline(&[], 8), "");
    }

    #[test]
    fn nonzero_values_are_visible() {
        // Even a 1-out-of-64 value must render as a non-space glyph.
        let s = sparkline(&[1], 64);
        assert_eq!(s, "▁");
    }

    #[test]
    fn downsample_keeps_peaks() {
        let series: Vec<u32> = (0..100).map(|i| if i == 57 { 99 } else { 1 }).collect();
        let down = downsample_max(&series, 10);
        assert_eq!(down.len(), 10);
        assert_eq!(*down.iter().max().unwrap(), 99);
    }

    #[test]
    fn downsample_short_series_passthrough() {
        assert_eq!(downsample_max(&[1, 2, 3], 10), vec![1, 2, 3]);
        assert_eq!(downsample_max(&[], 10), Vec::<u32>::new());
        assert_eq!(downsample_max(&[1, 2], 0), Vec::<u32>::new());
    }

    #[test]
    fn panel_aligns_labels() {
        let a = [1u32, 2, 3];
        let b = [3u32, 2, 1];
        let text = panel(&[("W-1", &a), ("W-10", &b)], 4, 80);
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        let bar0 = lines[0].find('|').unwrap();
        let bar1 = lines[1].find('|').unwrap();
        assert_eq!(bar0, bar1, "bars align");
    }
}
