//! Experiment harness reproducing every figure of the WOHA paper.
//!
//! Each figure has a binary in `src/bin/` (e.g. `fig11_workspan`) that
//! calls into [`experiments`] and prints the same rows/series the paper
//! plots. Criterion microbenchmarks live under `benches/`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chart;
pub mod experiments;
pub mod runner;
pub mod scenarios;
pub mod schedulers;
pub mod sweep;
pub mod table;

pub use runner::{run_many, run_many_jobs, run_one};
pub use schedulers::SchedulerKind;
pub use sweep::{
    available_jobs, canonical_report_json, jobs_flag_or, run_sweep, CellKey, SimSweep, SimSweepRun,
};
