//! Plain-text table and CSV rendering for experiment output.

use std::fmt::Write as _;

/// A simple fixed-width table: a header row plus data rows, rendered with
/// column widths fitted to content.
///
/// # Examples
///
/// ```
/// use woha_bench::table::Table;
/// let mut t = Table::new(vec!["scheduler", "misses"]);
/// t.row(vec!["FIFO".into(), "12".into()]);
/// let text = t.render();
/// assert!(text.contains("FIFO"));
/// assert!(text.starts_with("scheduler"));
/// ```
#[derive(Debug, Clone)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(header: Vec<impl Into<String>>) -> Self {
        Table {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table with padded columns and a separator line.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let emit = |cells: &[String], out: &mut String| {
            for (i, (cell, &w)) in cells.iter().zip(&widths).enumerate() {
                if i > 0 {
                    out.push_str("  ");
                }
                let _ = write!(out, "{cell:<w$}");
            }
            // Trim per-line trailing padding.
            while out.ends_with(' ') {
                out.pop();
            }
            out.push('\n');
        };
        emit(&self.header, &mut out);
        let sep: Vec<String> = widths.iter().map(|&w| "-".repeat(w)).collect();
        emit(&sep, &mut out);
        let _ = cols;
        for row in &self.rows {
            emit(row, &mut out);
        }
        out
    }

    /// Renders the table as CSV (no quoting — experiment cells are plain).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let emit = |cells: &[String], out: &mut String| {
            out.push_str(&cells.join(","));
            out.push('\n');
        };
        emit(&self.header, &mut out);
        for row in &self.rows {
            emit(row, &mut out);
        }
        out
    }
}

/// Collects values in first-appearance order, dropping duplicates — the
/// shared "axis labels of a sweep" helper the experiment tables use to
/// turn cell lists back into ordered column sets.
pub fn ordered_unique<T: Clone + PartialEq>(items: impl IntoIterator<Item = T>) -> Vec<T> {
    let mut seen: Vec<T> = Vec::new();
    for item in items {
        if !seen.contains(&item) {
            seen.push(item);
        }
    }
    seen
}

/// Formats a float with 3 significant decimals, trimming noise.
pub fn fmt_f64(v: f64) -> String {
    format!("{v:.3}")
}

/// Formats seconds from a [`woha_model::SimDuration`].
pub fn fmt_secs(d: woha_model::SimDuration) -> String {
    format!("{:.0}", d.as_secs_f64())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(vec!["a", "long-header"]);
        t.row(vec!["x".into(), "1".into()]);
        t.row(vec!["yyyy".into(), "22".into()]);
        let text = t.render();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[1].starts_with("----"));
        // Columns align: "long-header" starts at the same offset everywhere.
        let col = lines[0].find("long-header").unwrap();
        assert_eq!(&lines[2][col..col + 1], "1");
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    fn csv_output() {
        let mut t = Table::new(vec!["a", "b"]);
        t.row(vec!["1".into(), "2".into()]);
        assert_eq!(t.to_csv(), "a,b\n1,2\n");
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn row_width_checked() {
        Table::new(vec!["a"]).row(vec!["1".into(), "2".into()]);
    }

    #[test]
    fn formatters() {
        assert_eq!(fmt_f64(0.12345), "0.123");
        assert_eq!(fmt_secs(woha_model::SimDuration::from_secs(90)), "90");
    }

    #[test]
    fn ordered_unique_keeps_first_appearance_order() {
        assert_eq!(
            ordered_unique(["b", "a", "b", "c", "a"]),
            vec!["b", "a", "c"]
        );
        assert_eq!(ordered_unique(Vec::<u32>::new()), Vec::<u32>::new());
    }
}
