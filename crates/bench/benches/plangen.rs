//! Criterion benchmarks for the client-side Scheduling Plan Generator:
//! one `generate_reqs` pass and the full min-feasible binary search, on
//! the 33-job Fig 7 workflow and a large 1400+-task workflow.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use woha_core::{generate_plan, generate_reqs, CapMode, JobPriorities, PriorityPolicy};
use woha_model::{JobSpec, SimDuration, WorkflowBuilder, WorkflowSpec};
use woha_trace::topology::paper_fig7;

fn big_workflow() -> WorkflowSpec {
    let mut b = WorkflowBuilder::new("big");
    for i in 0..20 {
        b.add_job(JobSpec::new(
            format!("j{i}"),
            70,
            7,
            SimDuration::from_secs(30),
            SimDuration::from_secs(60),
        ));
    }
    b.relative_deadline(SimDuration::from_mins(200));
    b.build().unwrap()
}

fn bench_plangen(c: &mut Criterion) {
    let fig7 = paper_fig7("w")
        .relative_deadline(SimDuration::from_mins(60))
        .build()
        .unwrap();
    let big = big_workflow();
    let mut group = c.benchmark_group("plangen");
    for (name, w) in [("fig7_33jobs", &fig7), ("big_1540tasks", &big)] {
        let pri = JobPriorities::compute(w, PriorityPolicy::Lpf);
        group.bench_function(format!("{name}/single_pass_cap96"), |b| {
            b.iter(|| black_box(generate_reqs(w, &pri, 96)));
        });
        group.bench_function(format!("{name}/binary_search"), |b| {
            b.iter(|| black_box(generate_plan(w, &pri, 96, CapMode::MinFeasible)));
        });
    }
    group.bench_function("priorities/fig7_all_policies", |b| {
        b.iter(|| {
            for policy in PriorityPolicy::ALL {
                black_box(JobPriorities::compute(&fig7, policy));
            }
        });
    });
    group.finish();
}

criterion_group!(benches, bench_plangen);
criterion_main!(benches);
