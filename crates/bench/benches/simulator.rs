//! Criterion benchmarks for the cluster simulator: full Fig 11 runs per
//! scheduler (measuring end-to-end events/second of the discrete-event
//! core under real scheduling decisions).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use woha_bench::scenarios::{demo_cluster, fig11_workflows};
use woha_bench::{run_one, SchedulerKind};
use woha_sim::SimConfig;

fn bench_fig11_runs(c: &mut Criterion) {
    let workflows = fig11_workflows();
    let cluster = demo_cluster();
    let config = SimConfig::default();
    let mut group = c.benchmark_group("sim_fig11");
    group.sample_size(10);
    for kind in SchedulerKind::ALL {
        group.bench_with_input(BenchmarkId::from_parameter(kind), &kind, |b, &kind| {
            b.iter(|| black_box(run_one(kind, &workflows, &cluster, &config)));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fig11_runs);
criterion_main!(benches);
