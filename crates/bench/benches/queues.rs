//! Criterion microbenchmarks for the workflow-ordering structures: the
//! skip list against `BTreeMap`, and the three Fig 13(a) queue strategies
//! at several queue lengths.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::collections::BTreeSet;
use std::hint::black_box;
use woha_bench::experiments::throughput::QueueHarness;
use woha_core::{QueueStrategy, SkipList};

fn bench_head_churn(c: &mut Criterion) {
    let mut group = c.benchmark_group("head_churn");
    for n in [1_000u64, 100_000] {
        group.bench_with_input(BenchmarkId::new("skiplist", n), &n, |b, &n| {
            let mut list: SkipList<(i64, u64), ()> = SkipList::new();
            for i in 0..n {
                list.insert((i as i64 * 100, i), ());
            }
            let mut key = *list.first().unwrap().0;
            b.iter(|| {
                list.remove(&key);
                key.0 += 1;
                list.insert(black_box(key), ());
            });
        });
        group.bench_with_input(BenchmarkId::new("btreeset", n), &n, |b, &n| {
            let mut set: BTreeSet<(i64, u64)> = BTreeSet::new();
            for i in 0..n {
                set.insert((i as i64 * 100, i));
            }
            let mut key = *set.iter().next().unwrap();
            b.iter(|| {
                set.remove(&key);
                key.0 += 1;
                set.insert(black_box(key));
            });
        });
    }
    group.finish();
}

fn bench_assign_task(c: &mut Criterion) {
    let mut group = c.benchmark_group("assign_task");
    for n in [1_000usize, 10_000] {
        for strategy in [QueueStrategy::Dsl, QueueStrategy::Bst, QueueStrategy::Naive] {
            if strategy == QueueStrategy::Naive && n > 1_000 {
                continue; // minutes per sample otherwise
            }
            group.bench_with_input(BenchmarkId::new(format!("{strategy:?}"), n), &n, |b, &n| {
                let mut harness = QueueHarness::new(strategy, n);
                b.iter(|| black_box(harness.assign_task()));
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_head_churn, bench_assign_task);
criterion_main!(benches);
