//! Cross-crate property-based invariants: the scheduling plan generator,
//! the simulator, and the schedulers agree on the laws listed in
//! DESIGN.md §6.

use proptest::collection::vec;
use proptest::prelude::*;
use woha::prelude::*;

/// An arbitrary small workflow: forward-edge layered DAG, 2–8 jobs.
fn arb_workflow() -> impl Strategy<Value = WorkflowSpec> {
    (
        2usize..8,
        vec((0usize..8, 0usize..8), 0..12),
        vec((1u32..6, 0u32..3, 5u64..60, 5u64..120), 8),
        60u64..240,
    )
        .prop_map(|(n, edges, jobs, deadline_mins)| {
            let mut b = WorkflowBuilder::new("prop");
            let ids: Vec<_> = (0..n)
                .map(|i| {
                    let (m, r, md, rd) = jobs[i];
                    b.add_job(JobSpec::new(
                        format!("j{i}"),
                        m,
                        r,
                        SimDuration::from_secs(md),
                        SimDuration::from_secs(rd),
                    ))
                })
                .collect();
            for (a, z) in edges {
                let (a, z) = (a % n, z % n);
                if a < z {
                    b.add_dependency(ids[a], ids[z]);
                }
            }
            b.relative_deadline(SimDuration::from_mins(deadline_mins));
            b.build().expect("forward edges are acyclic")
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Plan invariants: total requirement equals the task count, the
    /// requirement curve is monotone, and span shrinks (weakly) as the cap
    /// grows.
    #[test]
    fn plan_invariants(w in arb_workflow(), cap in 1u32..32) {
        for policy in [PriorityPolicy::Hlf, PriorityPolicy::Lpf, PriorityPolicy::Mpf] {
            let pri = JobPriorities::compute(&w, policy);
            let plan = generate_reqs(&w, &pri, cap);
            prop_assert_eq!(plan.total_tasks(), w.total_tasks());
            prop_assert_eq!(
                plan.requirements().last().map(|r| r.cumulative),
                Some(w.total_tasks())
            );
            // Monotone non-increasing in ttd.
            let mut last = u64::MAX;
            for probe in 0..20 {
                let ttd = SimDuration::from_millis(
                    plan.span().as_millis() * probe / 19,
                );
                let req = plan.required_at(ttd);
                prop_assert!(req <= last);
                last = req;
            }
            // The plan can never finish faster than the critical path or
            // than total work on `cap` slots.
            prop_assert!(plan.span() >= w.critical_path());
            let work_bound = w.total_work().as_millis() / u64::from(cap);
            prop_assert!(plan.span().as_millis() >= work_bound);
            // More slots can occasionally lengthen a list schedule
            // (Graham's timing anomaly), but never by 2x or more.
            let bigger = generate_reqs(&w, &pri, cap + 4);
            prop_assert!(bigger.span().as_millis() < plan.span().as_millis() * 2);
        }
    }

    /// The binary-searched cap yields a feasible plan whenever the full
    /// cluster is feasible (minimality is only up to Graham's timing
    /// anomaly, which the binary search shares with the paper).
    #[test]
    fn min_feasible_cap_is_feasible(w in arb_workflow()) {
        let pri = JobPriorities::compute(&w, PriorityPolicy::Hlf);
        let total = 32;
        let budget = w.relative_deadline();
        let plan = generate_plan(&w, &pri, total, CapMode::MinFeasible);
        prop_assert!(plan.resource_cap() >= 1 && plan.resource_cap() <= total);
        let full = generate_reqs(&w, &pri, total);
        if full.span() <= budget {
            prop_assert!(plan.span() <= budget);
        } else {
            prop_assert_eq!(plan.resource_cap(), total);
        }
    }

    /// Simulator invariants across schedulers: every run completes, no
    /// invalid assignments, exactly the right number of tasks execute,
    /// every finish time is after the submission, and reducers never beat
    /// the workflow's first possible map wave.
    #[test]
    fn simulation_invariants(
        workflows in vec(arb_workflow(), 1..4),
        seed in 0u64..4,
    ) {
        let cluster = ClusterConfig::uniform(3, 2, 1);
        let config = SimConfig {
            duration_jitter: 0.1,
            seed,
            ..SimConfig::default()
        };
        let expected: u64 = workflows.iter().map(|w| w.total_tasks()).sum();
        let mut schedulers: Vec<Box<dyn WorkflowScheduler>> = vec![
            Box::new(FifoScheduler::new()),
            Box::new(FairScheduler::new()),
            Box::new(EdfScheduler::new()),
            Box::new(WohaScheduler::new(WohaConfig::new(PriorityPolicy::Lpf, 9))),
        ];
        for scheduler in &mut schedulers {
            let report = run_simulation(&workflows, scheduler.as_mut(), &cluster, &config);
            prop_assert!(report.completed, "{}", report.scheduler);
            prop_assert_eq!(report.invalid_assignments, 0);
            prop_assert_eq!(report.tasks_executed, expected);
            for (o, w) in report.outcomes.iter().zip(&workflows) {
                let finish = o.finished.expect("completed run");
                prop_assert!(finish > w.submit_time());
                // No workflow can beat its own critical path (jitter can
                // shrink durations by at most 10%).
                let floor = w.critical_path().mul_f64(0.85);
                prop_assert!(
                    finish.saturating_since(w.submit_time()) >= floor,
                    "{} finished impossibly fast", o.name
                );
            }
            // Utilization is a valid fraction.
            let u = report.overall_utilization();
            prop_assert!((0.0..=1.0).contains(&u));
        }
    }

    /// Fault-injection invariants: under stochastic node crashes with
    /// recovery (no blacklisting), every run still terminates with the
    /// full task count plus exactly the requeued and re-executed work, the
    /// counters balance, and the same seed reproduces the same outcomes.
    #[test]
    fn fault_injection_invariants(
        workflows in vec(arb_workflow(), 1..3),
        seed in 0u64..4,
    ) {
        let cluster = ClusterConfig::uniform(4, 2, 1).with_faults(FaultConfig {
            mtbf: Some(SimDuration::from_mins(20)),
            mttr: SimDuration::from_mins(1),
            detect_missed_heartbeats: 2,
            blacklist_after: 0,
            ..FaultConfig::default()
        });
        let config = SimConfig { seed, ..SimConfig::default() };
        let expected: u64 = workflows.iter().map(|w| w.total_tasks()).sum();
        let mut schedulers: Vec<Box<dyn WorkflowScheduler>> = vec![
            Box::new(FifoScheduler::new()),
            Box::new(EdfScheduler::new()),
            Box::new(WohaScheduler::new(WohaConfig::new(PriorityPolicy::Lpf, 12))),
        ];
        for scheduler in &mut schedulers {
            let report = run_simulation(&workflows, scheduler.as_mut(), &cluster, &config);
            prop_assert!(report.completed, "{}", report.scheduler);
            prop_assert_eq!(report.invalid_assignments, 0);
            prop_assert_eq!(
                report.tasks_executed,
                expected + report.tasks_requeued + report.map_outputs_lost,
                "{}", report.scheduler
            );
            // Without blacklisting every detected crash eventually heals.
            prop_assert!(report.node_recoveries <= report.node_failures);
            prop_assert_eq!(report.nodes_blacklisted, 0);
            prop_assert!((0.0..=1.0).contains(&report.overall_utilization()));
        }
        // Determinism: repeating one scheduler reproduces the outcomes.
        let mut again = FifoScheduler::new();
        let second = run_simulation(&workflows, &mut again, &cluster, &config);
        let mut first = FifoScheduler::new();
        let first = run_simulation(&workflows, &mut first, &cluster, &config);
        prop_assert_eq!(first.outcomes, second.outcomes);
        prop_assert_eq!(first.node_failures, second.node_failures);
    }

    /// The WOHA queue strategies (DSL, BST) produce byte-identical
    /// outcomes — they implement the same algorithm.
    #[test]
    fn dsl_and_bst_schedules_agree(
        workflows in vec(arb_workflow(), 1..4),
    ) {
        let cluster = ClusterConfig::uniform(3, 2, 1);
        let config = SimConfig::default();
        let run = |queue| {
            let mut s = WohaScheduler::new(WohaConfig {
                queue,
                ..WohaConfig::new(PriorityPolicy::Hlf, 9)
            });
            run_simulation(&workflows, &mut s, &cluster, &config)
        };
        let dsl = run(QueueStrategy::Dsl);
        let bst = run(QueueStrategy::Bst);
        prop_assert_eq!(dsl.outcomes, bst.outcomes);
    }

    /// Failure prediction is inert without faults. Plan-level: a padding
    /// config derived from an unbounded MTBF has rework fraction exactly
    /// zero and reproduces the unpadded plan bit for bit. Sim-level: on a
    /// fault-free cluster the propensity scores never leave zero, no
    /// risk-aware action fires, and the workflow outcomes are the ones the
    /// prediction-off run produces.
    #[test]
    fn prediction_is_inert_without_faults(
        workflows in vec(arb_workflow(), 1..3),
        seed in 0u64..4,
        cap in 4u32..24,
    ) {
        for w in &workflows {
            let pad = PadConfig::new(SimDuration::MAX);
            let fraction = rework_fraction(w, &pad);
            prop_assert_eq!(fraction, 0.0);
            let budget = w.relative_deadline();
            prop_assert_eq!(padded_budget(budget, fraction), budget);
            for policy in [PriorityPolicy::Hlf, PriorityPolicy::Lpf, PriorityPolicy::Mpf] {
                let pri = JobPriorities::compute(w, policy);
                let plain = generate_plan(w, &pri, cap, CapMode::MinFeasible);
                let padded = generate_plan_with_budget(
                    w,
                    &pri,
                    cap,
                    CapMode::MinFeasible,
                    padded_budget(budget, fraction),
                );
                prop_assert_eq!(plain, padded);
            }
        }

        let cluster = ClusterConfig::uniform(4, 2, 1);
        let run = |prediction: Option<PredictionConfig>, padding: Option<PadConfig>| {
            let mut s = WohaScheduler::new(WohaConfig {
                padding,
                ..WohaConfig::new(PriorityPolicy::Lpf, 12)
            });
            let config = SimConfig { seed, prediction, ..SimConfig::default() };
            run_simulation(&workflows, &mut s, &cluster, &config)
        };
        let off = run(None, None);
        let on = run(
            Some(PredictionConfig {
                risk_placement: true,
                ..PredictionConfig::default()
            }),
            Some(PadConfig::new(SimDuration::MAX)),
        );
        prop_assert!(off.prediction.is_none());
        let p = on.prediction.as_ref().expect("prediction on reports");
        prop_assert!(p.node_propensity.iter().all(|&s| s == 0.0));
        prop_assert_eq!(p.plans_padded, 0);
        prop_assert_eq!(p.risk_averted_placements, 0);
        prop_assert_eq!(p.preemptive_speculations, 0);
        prop_assert_eq!(p.adaptive_blacklists, 0);
        prop_assert_eq!(&off.outcomes, &on.outcomes);
    }
}
