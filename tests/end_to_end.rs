//! End-to-end integration tests: workflows built through every front door
//! (builder, XML, generators) run on the simulated cluster under every
//! scheduler, with paper-level outcomes checked.

use woha::prelude::*;
use woha::trace::topology::{self, paper_fig7};

fn demo_cluster() -> ClusterConfig {
    ClusterConfig::uniform(32, 2, 1)
}

fn fig11_workflows() -> Vec<WorkflowSpec> {
    let releases = [0u64, 5, 10];
    let deadlines = [80u64, 70, 60];
    releases
        .iter()
        .zip(&deadlines)
        .enumerate()
        .map(|(i, (&rel, &dl))| {
            paper_fig7(format!("W-{}", i + 1))
                .submit_at(SimTime::from_mins(rel))
                .relative_deadline(SimDuration::from_mins(dl))
                .build()
                .unwrap()
        })
        .collect()
}

fn all_schedulers(total_slots: u32) -> Vec<Box<dyn WorkflowScheduler>> {
    let mut v: Vec<Box<dyn WorkflowScheduler>> = vec![
        Box::new(EdfScheduler::new()),
        Box::new(FifoScheduler::new()),
        Box::new(FairScheduler::new()),
    ];
    for policy in [
        PriorityPolicy::Lpf,
        PriorityPolicy::Hlf,
        PriorityPolicy::Mpf,
    ] {
        v.push(Box::new(WohaScheduler::new(WohaConfig::new(
            policy,
            total_slots,
        ))));
    }
    v
}

/// The headline result: on the Fig 11 scenario, every WOHA variant meets
/// all three deadlines while each ported baseline misses at least one.
#[test]
fn fig11_headline_result() {
    let workflows = fig11_workflows();
    let cluster = demo_cluster();
    let config = SimConfig::default();
    for mut scheduler in all_schedulers(96) {
        let report = run_simulation(&workflows, scheduler.as_mut(), &cluster, &config);
        assert!(report.completed, "{}", report.scheduler);
        assert_eq!(report.invalid_assignments, 0, "{}", report.scheduler);
        let misses = report.deadline_misses();
        if report.scheduler.starts_with("WOHA") {
            assert_eq!(misses, 0, "{} must meet all deadlines", report.scheduler);
        } else {
            assert!(misses >= 1, "{} should miss a deadline", report.scheduler);
        }
    }
}

/// Work conservation: whichever scheduler runs, the total executed task
/// count and per-workflow task accounting are identical.
#[test]
fn schedulers_execute_identical_work() {
    let workflows = fig11_workflows();
    let cluster = demo_cluster();
    let config = SimConfig::default();
    let expected: u64 = workflows.iter().map(|w| w.total_tasks()).sum();
    for mut scheduler in all_schedulers(96) {
        let report = run_simulation(&workflows, scheduler.as_mut(), &cluster, &config);
        assert_eq!(report.tasks_executed, expected, "{}", report.scheduler);
    }
}

/// The same run twice is bit-identical (deterministic simulation), and a
/// different jitter seed changes it.
#[test]
fn runs_are_deterministic() {
    let workflows = fig11_workflows();
    let cluster = demo_cluster();
    let config = SimConfig {
        duration_jitter: 0.2,
        seed: 1,
        ..SimConfig::default()
    };
    let run = |cfg: &SimConfig| {
        let mut s = WohaScheduler::new(WohaConfig::new(PriorityPolicy::Lpf, 96));
        run_simulation(&workflows, &mut s, &cluster, cfg)
    };
    assert_eq!(run(&config), run(&config));
    let other = SimConfig { seed: 2, ..config };
    assert_ne!(run(&config).outcomes, run(&other).outcomes);
}

/// WOHA still meets the Fig 11 deadlines when task durations deviate from
/// the estimates by ±15% (the plan is "just a rough estimation").
#[test]
fn woha_tolerates_estimation_error() {
    let workflows = fig11_workflows();
    let cluster = demo_cluster();
    for seed in 1..=3 {
        let config = SimConfig {
            duration_jitter: 0.15,
            seed,
            ..SimConfig::default()
        };
        let mut s = WohaScheduler::new(WohaConfig::new(PriorityPolicy::Lpf, 96));
        let report = run_simulation(&workflows, &mut s, &cluster, &config);
        assert!(
            report.deadline_misses() <= 1,
            "seed {seed}: {:?}",
            report.workspans()
        );
    }
}

/// An XML-configured workflow runs end to end and meets its deadline.
#[test]
fn xml_workflow_end_to_end() {
    let xml = r#"
    <workflow name="it" deadline="20m">
      <job name="a" mappers="8" reducers="2" map-duration="30s" reduce-duration="60s">
        <output path="/t/a"/>
      </job>
      <job name="b" mappers="4" reducers="1" map-duration="20s" reduce-duration="90s">
        <input path="/t/a"/>
        <output path="/t/b"/>
      </job>
    </workflow>"#;
    let spec = WorkflowConfig::parse(xml)
        .unwrap()
        .to_spec(SimTime::ZERO)
        .unwrap();
    let mut s = WohaScheduler::new(WohaConfig::new(PriorityPolicy::Hlf, 12));
    let report = run_simulation(
        &[spec],
        &mut s,
        &ClusterConfig::uniform(4, 2, 1),
        &SimConfig::default(),
    );
    assert!(report.completed);
    assert_eq!(report.deadline_misses(), 0);
}

/// A workflow whose deadline is impossible is still completed (best
/// effort), just late.
#[test]
fn impossible_deadline_is_best_effort() {
    let mut b = WorkflowBuilder::new("doomed");
    b.add_job(JobSpec::new(
        "long",
        4,
        2,
        SimDuration::from_mins(10),
        SimDuration::from_mins(10),
    ));
    b.relative_deadline(SimDuration::from_secs(30));
    let w = b.build().unwrap();
    let mut s = WohaScheduler::new(WohaConfig::new(PriorityPolicy::Lpf, 6));
    let report = run_simulation(
        &[w],
        &mut s,
        &ClusterConfig::uniform(2, 2, 1),
        &SimConfig::default(),
    );
    assert!(report.completed);
    assert_eq!(report.deadline_misses(), 1);
    assert!(report.max_tardiness() > SimDuration::from_mins(15));
}

/// Generated topologies of every shape run to completion under every
/// scheduler on a small cluster.
#[test]
fn generated_topologies_run_everywhere() {
    let job = |i: usize| {
        JobSpec::new(
            format!("j{i}"),
            3,
            1,
            SimDuration::from_secs(15),
            SimDuration::from_secs(25),
        )
    };
    let mut rng = Rng::new(11);
    let mut workflows = vec![
        topology::chain("chain", 5, job).build().unwrap(),
        topology::fork_join("fj", 4, job).build().unwrap(),
        topology::diamond("dia", job).build().unwrap(),
        topology::random_layered("rnd", 9, &mut rng, job)
            .build()
            .unwrap(),
    ];
    for (i, w) in workflows.iter_mut().enumerate() {
        *w = w.reissued(
            w.name().to_string(),
            SimTime::from_secs(10 * i as u64),
            SimTime::from_mins(60),
        );
    }
    let cluster = ClusterConfig::uniform(3, 2, 1);
    for mut scheduler in all_schedulers(9) {
        let report = run_simulation(
            &workflows,
            scheduler.as_mut(),
            &cluster,
            &SimConfig::default(),
        );
        assert!(report.completed, "{}", report.scheduler);
        assert_eq!(report.deadline_misses(), 0, "{}", report.scheduler);
    }
}

/// Scripted node crashes under every scheduler: running tasks are
/// requeued, completed map outputs on the dead node are re-executed before
/// the dependent reducers can finish, the node's slots leave the pool
/// until recovery, and every run still terminates.
#[test]
fn scripted_crashes_recover_under_every_scheduler() {
    let mut b = WorkflowBuilder::new("crashy");
    let a = b.add_job(JobSpec::new(
        "a",
        8,
        2,
        SimDuration::from_secs(20),
        SimDuration::from_secs(60),
    ));
    let z = b.add_job(JobSpec::new(
        "z",
        4,
        1,
        SimDuration::from_secs(20),
        SimDuration::from_secs(30),
    ));
    b.add_dependency(a, z);
    b.relative_deadline(SimDuration::from_mins(30));
    let workflows = vec![b.build().unwrap()];
    let expected: u64 = workflows.iter().map(|w| w.total_tasks()).sum();

    // Node 3 dies at t=30 with job a's maps complete (two of its outputs
    // live there) and its reduces running; node 1 dies during recovery.
    let cluster = ClusterConfig::uniform(4, 2, 1).with_faults(FaultConfig::scripted(vec![
        ScriptedFault::one(
            NodeId::new(3),
            SimTime::from_secs(30),
            Some(SimTime::from_secs(120)),
        ),
        ScriptedFault::one(
            NodeId::new(1),
            SimTime::from_secs(50),
            Some(SimTime::from_secs(100)),
        ),
    ]));
    let config = SimConfig {
        track_timelines: true,
        ..SimConfig::default()
    };
    for mut scheduler in all_schedulers(12) {
        let report = run_simulation(&workflows, scheduler.as_mut(), &cluster, &config);
        let name = &report.scheduler;
        assert!(report.completed, "{name}");
        assert_eq!(report.invalid_assignments, 0, "{name}");
        assert_eq!(report.node_failures, 2, "{name}");
        assert_eq!(report.node_recoveries, 2, "{name}");
        assert!(
            report.tasks_requeued + report.map_outputs_lost > 0,
            "{name}: crashes must cost work"
        );
        // Work conservation with re-execution: every requeued task and
        // every invalidated map output runs again.
        assert_eq!(
            report.tasks_executed,
            expected + report.tasks_requeued + report.map_outputs_lost,
            "{name}"
        );
        // Slots leave the pool during the outages and return afterwards.
        let tl = report.timelines.as_ref().expect("timelines tracked");
        assert!(
            tl.down_slots().iter().any(|&d| d > 0),
            "{name}: outage must show up in the slot timeline"
        );
        assert_eq!(*tl.down_slots().last().unwrap(), 0, "{name}");
    }
}

/// Satellite: with node faults, failure injection, stragglers +
/// speculation, and duration jitter all active, the same `(config, seed)`
/// produces byte-identical reports; changing the seed changes the fault
/// schedule.
#[test]
fn fault_runs_are_reproducible() {
    let workflows = fig11_workflows();
    let cluster = demo_cluster().with_faults(FaultConfig {
        mtbf: Some(SimDuration::from_mins(90)),
        mttr: SimDuration::from_mins(3),
        detect_missed_heartbeats: 2,
        blacklist_after: 0,
        scripted: vec![ScriptedFault::one(
            NodeId::new(7),
            SimTime::from_mins(2),
            Some(SimTime::from_mins(8)),
        )],
        ..FaultConfig::default()
    });
    let run = |seed: u64| {
        let config = SimConfig {
            duration_jitter: 0.15,
            task_failure_prob: 0.02,
            speculation: Some(SpeculationConfig::default()),
            seed,
            ..SimConfig::default()
        };
        let mut s = WohaScheduler::new(WohaConfig::new(PriorityPolicy::Lpf, 96));
        let mut report = run_simulation(&workflows, &mut s, &cluster, &config);
        assert!(report.completed);
        // The only wall-clock (host-time) field; everything else is
        // simulation state and must reproduce exactly.
        report.scheduler_nanos = 0;
        serde_json::to_string(&report).unwrap()
    };
    assert_eq!(run(42), run(42), "same seed must be byte-identical");
    assert_ne!(run(42), run(43), "seed drives the fault schedule");
}

/// Satellite: a mid-run master crash with a lossless WAL is invisible to
/// an order-based scheduler except for the outage itself — every workflow
/// finishes exactly MTTR later than in the uninterrupted run. (WOHA and
/// EDF react to absolute deadlines, so only order-based schedulers give
/// the exact-shift identity.) And with master faults disabled, the report
/// is byte-identical to a plain run: the subsystem costs nothing when off.
#[test]
fn master_crash_with_wal_is_the_uninterrupted_run_shifted() {
    let workflows = fig11_workflows();
    let cluster = demo_cluster();
    let config = SimConfig::default();
    let baseline = run_simulation(&workflows, &mut FifoScheduler::new(), &cluster, &config);

    // Byte-identical when the subsystem is off (acceptance criterion).
    let disabled = demo_cluster().with_faults(FaultConfig::default());
    let off = run_simulation(&workflows, &mut FifoScheduler::new(), &disabled, &config);
    let strip = |mut r: SimReport| {
        r.scheduler_nanos = 0;
        serde_json::to_string(&r).unwrap()
    };
    assert_eq!(strip(baseline.clone()), strip(off));

    let mttr = SimDuration::from_secs(45);
    let faulty = demo_cluster().with_faults(FaultConfig {
        master: MasterFaultConfig {
            mttr,
            scripted: vec![SimTime::from_mins(8)],
            ..MasterFaultConfig::default()
        },
        ..FaultConfig::default()
    });
    let report = run_simulation(&workflows, &mut FifoScheduler::new(), &faulty, &config);
    assert!(report.completed);
    let rec = report.recovery.as_ref().expect("master faults on");
    assert_eq!(rec.master_crashes, 1);
    assert_eq!(rec.attempts_requeued + rec.attempts_orphaned, 0, "lossless");
    assert_eq!(report.tasks_requeued, 0, "no work re-executes");
    for (o, b) in report.outcomes.iter().zip(&baseline.outcomes) {
        assert_eq!(
            o.finished.unwrap(),
            b.finished.unwrap().saturating_add(mttr),
            "{}: completion must shift by exactly the outage",
            o.name
        );
    }
}

/// Satellite: recovering from a stale checkpoint (WAL disabled) while
/// jitter, stragglers, speculation, and task failures are all active is
/// still fully deterministic — the crash-recovery path draws from the same
/// seeded streams as everything else.
#[test]
fn stale_snapshot_recovery_is_deterministic() {
    let workflows = fig11_workflows();
    let cluster = demo_cluster().with_faults(FaultConfig {
        master: MasterFaultConfig {
            mttr: SimDuration::from_mins(1),
            checkpoint_interval: SimDuration::from_mins(6),
            wal: false,
            scripted: vec![SimTime::from_mins(10)],
            ..MasterFaultConfig::default()
        },
        ..FaultConfig::default()
    });
    let run = |seed: u64| {
        let config = SimConfig {
            duration_jitter: 0.15,
            task_failure_prob: 0.02,
            speculation: Some(SpeculationConfig::default()),
            seed,
            ..SimConfig::default()
        };
        let mut s = WohaScheduler::new(WohaConfig::new(PriorityPolicy::Lpf, 96));
        let mut report = run_simulation(&workflows, &mut s, &cluster, &config);
        assert!(report.completed);
        let rec = report.recovery.as_ref().expect("master faults on");
        assert_eq!(rec.master_crashes, 1);
        assert!(
            rec.attempts_requeued + rec.attempts_orphaned > 0,
            "a stale snapshot must lose in-flight work"
        );
        report.scheduler_nanos = 0;
        serde_json::to_string(&report).unwrap()
    };
    assert_eq!(run(42), run(42), "same seed must be byte-identical");
    assert_ne!(run(42), run(43), "seed drives the recovery path too");
}

/// Satellite: the PR 2 shift-by-MTTR failover identity also holds with
/// batched heartbeats — and a master crash landing between coalesced
/// heartbeats must not drop or double-assign attempts, so a WOHA run with
/// a lossless-WAL crash is byte-identical whether heartbeats are batched
/// or probed per slot.
#[test]
fn failover_identity_holds_with_batched_heartbeats() {
    let workflows = fig11_workflows();
    let mttr = SimDuration::from_secs(45);
    let faulty = demo_cluster().with_faults(FaultConfig {
        master: MasterFaultConfig {
            mttr,
            scripted: vec![SimTime::from_mins(8)],
            ..MasterFaultConfig::default()
        },
        ..FaultConfig::default()
    });

    for batch in [true, false] {
        let config = SimConfig {
            batch_heartbeats: batch,
            ..SimConfig::default()
        };
        let baseline = run_simulation(
            &workflows,
            &mut FifoScheduler::new(),
            &demo_cluster(),
            &config,
        );
        let report = run_simulation(&workflows, &mut FifoScheduler::new(), &faulty, &config);
        assert!(report.completed, "batch={batch}");
        let rec = report.recovery.as_ref().expect("master faults on");
        assert_eq!(rec.master_crashes, 1, "batch={batch}");
        assert_eq!(
            rec.attempts_requeued + rec.attempts_orphaned,
            0,
            "batch={batch}: the WAL must stay lossless"
        );
        assert_eq!(report.tasks_requeued, 0, "batch={batch}");
        for (o, b) in report.outcomes.iter().zip(&baseline.outcomes) {
            assert_eq!(
                o.finished.unwrap(),
                b.finished.unwrap().saturating_add(mttr),
                "batch={batch} {}: completion must shift by exactly the outage",
                o.name
            );
        }
    }

    // The same crash under WOHA (whose batch path pre-commits its picks):
    // batched and per-slot probing recover to byte-identical reports, so a
    // crash between coalesced heartbeats neither drops nor double-assigns.
    let strip = |mut r: SimReport| {
        r.scheduler_nanos = 0;
        serde_json::to_string(&r).unwrap()
    };
    let woha_run = |batch: bool| {
        let config = SimConfig {
            batch_heartbeats: batch,
            ..SimConfig::default()
        };
        let mut s = WohaScheduler::new(WohaConfig::new(PriorityPolicy::Lpf, 96));
        let report = run_simulation(&workflows, &mut s, &faulty, &config);
        assert!(report.completed, "batch={batch}");
        let rec = report.recovery.as_ref().expect("master faults on");
        assert_eq!(rec.master_crashes, 1, "batch={batch}");
        assert_eq!(rec.attempts_requeued + rec.attempts_orphaned, 0);
        strip(report)
    };
    assert_eq!(woha_run(true), woha_run(false));
}

/// Satellite: a full Yahoo-trace simulation with WOHA-LPF produces a
/// byte-identical `SimReport` under the `dsl`, `btree`, and `pheap`
/// priority-index backends, and under batched vs. per-slot heartbeats —
/// the backends and the batch path are pure implementation choices.
#[test]
fn index_backends_and_batching_are_behavior_identical() {
    let mut rng = Rng::new(7);
    let flows = yahoo_workflows(
        &YahooTraceConfig {
            map_count_max: 80,
            reduce_count_max: 16,
            ..YahooTraceConfig::default()
        },
        &mut rng,
    );
    let workload = Workload::assign(
        &flows,
        ReleasePattern::UniformWindow(SimDuration::from_mins(10)),
        DeadlineRule::UniformRelative {
            min: SimDuration::from_mins(3),
            max: SimDuration::from_mins(12),
            floor_stretch: 1.2,
            reference_slots: 100,
        },
        &mut rng,
    )
    .without_single_jobs();
    let cluster = ClusterConfig::with_totals(120, 120);

    let run = |queue: QueueStrategy, batch: bool| {
        let config = SimConfig {
            batch_heartbeats: batch,
            ..SimConfig::default()
        };
        let mut s = WohaScheduler::new(WohaConfig {
            queue,
            ..WohaConfig::new(PriorityPolicy::Lpf, 240)
        });
        let mut report = run_simulation(workload.workflows(), &mut s, &cluster, &config);
        assert!(report.completed, "{queue:?} batch={batch}");
        report.scheduler_nanos = 0;
        serde_json::to_string(&report).unwrap()
    };

    let reference = run(QueueStrategy::Dsl, true);
    for queue in [
        QueueStrategy::Dsl,
        QueueStrategy::Bst,
        QueueStrategy::Pairing,
    ] {
        for batch in [true, false] {
            if queue == QueueStrategy::Dsl && batch {
                continue; // the reference itself
            }
            assert_eq!(
                run(queue, batch),
                reference,
                "{queue:?} batch={batch} must be byte-identical to dsl batched"
            );
        }
    }
}

/// The Yahoo-like workload runs to completion on a trace-scale cluster
/// under every scheduler, and WOHA's mean miss ratio beats FIFO's.
#[test]
fn yahoo_workload_end_to_end() {
    let mut rng = Rng::new(99);
    let flows = yahoo_workflows(
        &YahooTraceConfig {
            map_count_max: 150,
            reduce_count_max: 30,
            ..YahooTraceConfig::default()
        },
        &mut rng,
    );
    let workload = Workload::assign(
        &flows,
        ReleasePattern::UniformWindow(SimDuration::from_mins(12)),
        DeadlineRule::UniformRelative {
            min: SimDuration::from_mins(3),
            max: SimDuration::from_mins(12),
            floor_stretch: 1.2,
            reference_slots: 100,
        },
        &mut rng,
    )
    .without_single_jobs();
    let cluster = ClusterConfig::with_totals(240, 240);
    let config = SimConfig::default();

    let mut fifo = FifoScheduler::new();
    let fifo_report = run_simulation(workload.workflows(), &mut fifo, &cluster, &config);
    let mut woha = WohaScheduler::new(WohaConfig::new(PriorityPolicy::Lpf, 480));
    let woha_report = run_simulation(workload.workflows(), &mut woha, &cluster, &config);

    assert!(fifo_report.completed && woha_report.completed);
    assert!(
        woha_report.miss_ratio() <= fifo_report.miss_ratio(),
        "woha {:.2} vs fifo {:.2}",
        woha_report.miss_ratio(),
        fifo_report.miss_ratio()
    );
}

/// Yahoo-trace fixture shared by the observability identity tests: the
/// same workload as `index_backends_and_batching_are_behavior_identical`.
fn obs_yahoo_workload() -> Workload {
    let mut rng = Rng::new(7);
    let flows = yahoo_workflows(
        &YahooTraceConfig {
            map_count_max: 80,
            reduce_count_max: 16,
            ..YahooTraceConfig::default()
        },
        &mut rng,
    );
    Workload::assign(
        &flows,
        ReleasePattern::UniformWindow(SimDuration::from_mins(10)),
        DeadlineRule::UniformRelative {
            min: SimDuration::from_mins(3),
            max: SimDuration::from_mins(12),
            floor_stretch: 1.2,
            reference_slots: 100,
        },
        &mut rng,
    )
    .without_single_jobs()
}

/// Satellite: the observability layer is invisible to the simulation. On
/// Yahoo-trace WOHA-LPF runs — including the batched-heartbeat and
/// master-failover variants — the `SimReport` JSON is byte-identical
/// across (a) the plain pre-observability entry point, (b) the observed
/// entry point with observability fully off, and (c) the observed entry
/// point with trace + metrics armed: recording must never perturb state.
#[test]
fn observability_off_and_on_leave_reports_byte_identical() {
    let workload = obs_yahoo_workload();
    let cluster = ClusterConfig::with_totals(120, 120);
    let faulty = ClusterConfig::with_totals(120, 120).with_faults(FaultConfig {
        master: MasterFaultConfig {
            mttr: SimDuration::from_secs(45),
            scripted: vec![SimTime::from_mins(8)],
            ..MasterFaultConfig::default()
        },
        ..FaultConfig::default()
    });
    let strip = |mut r: SimReport| {
        r.scheduler_nanos = 0;
        serde_json::to_string(&r).unwrap()
    };
    let scheduler = || WohaScheduler::new(WohaConfig::new(PriorityPolicy::Lpf, 240));

    for (cluster, label) in [(&cluster, "plain"), (&faulty, "failover")] {
        for batch in [false, true] {
            let base = SimConfig {
                batch_heartbeats: batch,
                ..SimConfig::default()
            };
            let armed = SimConfig {
                observability: ObservabilityConfig {
                    trace: true,
                    metrics: true,
                    sample_interval: Some(SimDuration::from_secs(30)),
                    ..ObservabilityConfig::default()
                },
                ..base.clone()
            };

            let plain = run_simulation(workload.workflows(), &mut scheduler(), cluster, &base);
            assert!(plain.completed, "{label} batch={batch}");

            let (off, off_obs) =
                run_simulation_observed(workload.workflows(), &mut scheduler(), cluster, &base);
            assert!(off_obs.trace.is_empty() && off_obs.metrics.is_none());

            let (on, on_obs) =
                run_simulation_observed(workload.workflows(), &mut scheduler(), cluster, &armed);
            assert!(!on_obs.trace.is_empty(), "{label} batch={batch}");
            assert!(on_obs.metrics.is_some(), "{label} batch={batch}");

            let reference = strip(plain);
            assert_eq!(reference, strip(off), "{label} batch={batch}: off path");
            assert_eq!(reference, strip(on), "{label} batch={batch}: on path");
        }
    }
}

/// Satellite: trace and metrics exports are deterministic — two identical
/// seeded runs (jitter, task failures, speculation, and a master crash all
/// active) produce byte-identical Chrome trace JSON and, once the
/// wall-clock decision-time histogram is filtered out, byte-identical
/// Prometheus text.
#[test]
fn observability_exports_are_deterministic() {
    let workflows = fig11_workflows();
    let cluster = demo_cluster().with_faults(FaultConfig {
        master: MasterFaultConfig {
            mttr: SimDuration::from_mins(1),
            scripted: vec![SimTime::from_mins(10)],
            ..MasterFaultConfig::default()
        },
        ..FaultConfig::default()
    });
    let config = SimConfig {
        duration_jitter: 0.15,
        task_failure_prob: 0.02,
        speculation: Some(SpeculationConfig::default()),
        seed: 42,
        observability: ObservabilityConfig {
            trace: true,
            metrics: true,
            sample_interval: Some(SimDuration::from_secs(30)),
            ..ObservabilityConfig::default()
        },
        ..SimConfig::default()
    };
    let run = || {
        let mut s = WohaScheduler::new(WohaConfig::new(PriorityPolicy::Lpf, 96));
        let (report, obs) = run_simulation_observed(&workflows, &mut s, &cluster, &config);
        assert!(report.completed);
        assert_eq!(report.recovery.as_ref().unwrap().master_crashes, 1);
        (obs.chrome_trace_json(), obs.prometheus_text().unwrap())
    };
    // The decision-time histogram observes host wall-clock; every other
    // line is pure simulation state and must reproduce exactly.
    let sim_only = |prom: &str| -> String {
        prom.lines()
            .filter(|l| !l.contains("woha_decision_seconds"))
            .collect::<Vec<_>>()
            .join("\n")
    };
    let (trace_a, prom_a) = run();
    let (trace_b, prom_b) = run();
    assert_eq!(trace_a, trace_b, "Chrome trace must be deterministic");
    assert_eq!(sim_only(&prom_a), sim_only(&prom_b));
    assert!(trace_a.contains("\"traceEvents\""));
    assert!(prom_a.contains("# TYPE woha_heartbeats_total counter"));
}

/// Tentpole: the streaming front door is the batch front door. The same
/// workload fed through a pre-materialized `VecSource` and through a
/// `JsonlSource` parsing its own `to_jsonl` serialization line-by-line
/// produces a `SimReport` byte-identical to the batch entry point, for
/// every scheduler — on a plain run and across a mid-run master crash
/// recovered from checkpoint + WAL replay.
#[test]
fn streamed_sources_match_batch_byte_for_byte() {
    let workflows = fig11_workflows();
    let jsonl = to_jsonl(&workflows).unwrap();
    let plain = demo_cluster();
    let faulty = demo_cluster().with_faults(FaultConfig {
        master: MasterFaultConfig {
            mttr: SimDuration::from_secs(45),
            scripted: vec![SimTime::from_mins(8)],
            ..MasterFaultConfig::default()
        },
        ..FaultConfig::default()
    });
    let config = SimConfig::default();
    let strip = |mut r: SimReport| {
        r.scheduler_nanos = 0;
        serde_json::to_string(&r).unwrap()
    };

    for (cluster, label) in [(&plain, "plain"), (&faulty, "failover")] {
        for ((mut batch_s, mut vec_s), mut jsonl_s) in all_schedulers(96)
            .into_iter()
            .zip(all_schedulers(96))
            .zip(all_schedulers(96))
        {
            let batch = run_simulation(&workflows, batch_s.as_mut(), cluster, &config);
            let name = batch.scheduler.clone();
            if label == "failover" {
                assert_eq!(batch.recovery.as_ref().unwrap().master_crashes, 1, "{name}");
            }
            let reference = strip(batch);

            let mut source = VecSource::new(workflows.clone());
            let streamed =
                try_run_simulation_streamed(&mut source, vec_s.as_mut(), cluster, &config, None)
                    .unwrap();
            assert_eq!(strip(streamed), reference, "{label} {name}: VecSource");

            let mut source = JsonlSource::from_reader(jsonl.as_bytes());
            let streamed =
                try_run_simulation_streamed(&mut source, jsonl_s.as_mut(), cluster, &config, None)
                    .unwrap();
            assert!(source.error().is_none(), "{label} {name}: clean parse");
            assert_eq!(strip(streamed), reference, "{label} {name}: JsonlSource");
        }
    }
}

/// Tentpole: streaming trace export. A `JsonlTraceSink` fed record-by-
/// record as the simulation runs writes byte-for-byte what the buffered
/// `Observations::trace_jsonl()` renders after the fact — on a reference
/// run with jitter, task failures, speculation, and a master crash all
/// active — and the two entry points' reports agree.
#[test]
fn streaming_trace_sink_matches_buffered_export() {
    let workflows = fig11_workflows();
    let cluster = demo_cluster().with_faults(FaultConfig {
        master: MasterFaultConfig {
            mttr: SimDuration::from_mins(1),
            scripted: vec![SimTime::from_mins(10)],
            ..MasterFaultConfig::default()
        },
        ..FaultConfig::default()
    });
    let config = SimConfig {
        duration_jitter: 0.15,
        task_failure_prob: 0.02,
        speculation: Some(SpeculationConfig::default()),
        seed: 42,
        observability: ObservabilityConfig {
            trace: true,
            metrics: true,
            sample_interval: Some(SimDuration::from_secs(30)),
            ..ObservabilityConfig::default()
        },
        ..SimConfig::default()
    };
    let scheduler = || WohaScheduler::new(WohaConfig::new(PriorityPolicy::Lpf, 96));

    let (buffered_report, obs) =
        run_simulation_observed(&workflows, &mut scheduler(), &cluster, &config);
    assert!(buffered_report.completed);
    let buffered = obs.trace_jsonl();
    assert!(!buffered.is_empty());

    let mut source = VecSource::new(workflows.clone());
    let mut sink = JsonlTraceSink::new(Vec::new());
    let (streamed_report, metrics) = try_run_simulation_streamed_observed(
        &mut source,
        &mut scheduler(),
        &cluster,
        &config,
        None,
        Some(&mut sink),
    )
    .unwrap();
    assert!(streamed_report.completed);
    assert!(metrics.is_some(), "metrics armed in config");
    let streamed = String::from_utf8(sink.finish().unwrap()).unwrap();
    assert_eq!(streamed, buffered, "incremental export must equal buffered");

    let strip = |mut r: SimReport| {
        r.scheduler_nanos = 0;
        serde_json::to_string(&r).unwrap()
    };
    assert_eq!(strip(streamed_report), strip(buffered_report));
}

/// Satellite: admission control at the front door, end to end. With an
/// `AdmissionController` gating the stream, a workflow whose critical path
/// cannot meet its deadline is turned away before touching the event loop:
/// the report's admission block counts it by reason, an `AdmissionReject`
/// record lands in the trace, and the remaining workflows run as usual.
#[test]
fn admission_gate_rejects_at_the_front_door() {
    let mut workflows = fig11_workflows();
    workflows.push(
        paper_fig7("doomed")
            .submit_at(SimTime::from_mins(15))
            .relative_deadline(SimDuration::from_mins(1))
            .build()
            .unwrap(),
    );
    let cluster = demo_cluster();
    let config = SimConfig {
        observability: ObservabilityConfig {
            trace: true,
            ..ObservabilityConfig::default()
        },
        ..SimConfig::default()
    };

    let mut gate = AdmissionController::new(&cluster);
    let mut source = VecSource::new(workflows.clone());
    let mut sink = MemorySink::new();
    let (report, _) = try_run_simulation_streamed_observed(
        &mut source,
        &mut WohaScheduler::new(WohaConfig::new(PriorityPolicy::Lpf, 96)),
        &cluster,
        &config,
        Some(&mut gate),
        Some(&mut sink),
    )
    .unwrap();
    assert!(report.completed);
    assert_eq!(report.outcomes.len(), 3, "the three feasible workflows run");
    assert_eq!(report.deadline_misses(), 0);
    let admission = report.admission.expect("gated run reports admission");
    assert_eq!(admission.workflows_rejected, 1);
    assert_eq!(admission.rejections.len(), 1);
    assert_eq!(
        admission.rejections[0].reason,
        "critical_path_exceeds_deadline"
    );
    assert_eq!(admission.rejections[0].count, 1);
    let rejects: Vec<_> = sink
        .into_records()
        .into_iter()
        .filter_map(|r| match r.event {
            TraceEvent::AdmissionReject { workflow, reason } => Some((r.at, workflow, reason)),
            _ => None,
        })
        .collect();
    assert_eq!(rejects.len(), 1, "one rejection traced");
    assert_eq!(rejects[0].1, "doomed");
    assert_eq!(rejects[0].2, "critical_path_exceeds_deadline");
    assert_eq!(rejects[0].0, SimTime::from_mins(15), "rejected on arrival");

    // Ungated, the doomed workflow runs (and misses); no admission block.
    let ungated = run_simulation(
        &workflows,
        &mut WohaScheduler::new(WohaConfig::new(PriorityPolicy::Lpf, 96)),
        &cluster,
        &config,
    );
    assert_eq!(ungated.outcomes.len(), 4);
    assert!(ungated.admission.is_none());
    assert!(ungated.deadline_misses() >= 1);
}

/// A replay clock for a source that is still being written: like
/// `SimClock` it never paces events and never re-stamps arrivals, but when
/// the source reports "no data yet" it blocks — sleeps a poll slice and
/// retries — instead of declaring the stream over. The event loop
/// therefore never advances past data the writer has yet to produce, so
/// the run is byte-identical to a batch run no matter how slowly (or in
/// what fragments) the bytes arrive.
struct BlockingReplayClock;

impl Clock for BlockingReplayClock {
    fn source_pending(&mut self, _next_event: Option<SimTime>) -> SourceWait {
        std::thread::sleep(std::time::Duration::from_micros(200));
        SourceWait::Retry
    }
}

fn temp_feed_path(tag: &str) -> std::path::PathBuf {
    use std::sync::atomic::{AtomicU64, Ordering};
    static N: AtomicU64 = AtomicU64::new(0);
    std::env::temp_dir().join(format!(
        "woha_e2e_feed_{}_{}_{tag}.jsonl",
        std::process::id(),
        N.fetch_add(1, Ordering::Relaxed),
    ))
}

/// Satellite: tailing a file that is still being written is the batch
/// front door. A writer thread appends the Yahoo-trace JSONL to a file
/// that does not exist yet, landing every record in two separate writes so
/// the reader keeps hitting end-of-file inside an unterminated line (the
/// truncated-tail retry in `JsonlSource`/`FollowSource`), then raises the
/// stop flag. The `FollowSource`-fed clocked run produces a `SimReport`
/// byte-identical to the batch run — on a plain cluster and across a
/// mid-run master crash recovered from checkpoint.
#[test]
fn follow_source_written_live_matches_batch_byte_for_byte() {
    use std::io::Write as _;

    // A live feed is chronological: sort by submit time so the sources'
    // nondecreasing-watermark clamp never has to rewrite a timestamp, and
    // use the same order for the batch reference.
    let mut workflows = obs_yahoo_workload().workflows().to_vec();
    workflows.sort_by_key(|w| w.submit_time());
    let jsonl = to_jsonl(&workflows).unwrap();
    let plain = ClusterConfig::with_totals(120, 120);
    let faulty = ClusterConfig::with_totals(120, 120).with_faults(FaultConfig {
        master: MasterFaultConfig {
            mttr: SimDuration::from_secs(45),
            scripted: vec![SimTime::from_mins(8)],
            ..MasterFaultConfig::default()
        },
        ..FaultConfig::default()
    });
    let config = SimConfig::default();
    let strip = |mut r: SimReport| {
        r.scheduler_nanos = 0;
        serde_json::to_string(&r).unwrap()
    };
    let schedulers = || -> Vec<Box<dyn WorkflowScheduler>> {
        vec![
            Box::new(WohaScheduler::new(WohaConfig::new(
                PriorityPolicy::Lpf,
                240,
            ))),
            Box::new(EdfScheduler::new()),
        ]
    };

    for (cluster, label) in [(&plain, "plain"), (&faulty, "failover")] {
        for (mut batch_s, mut follow_s) in schedulers().into_iter().zip(schedulers()) {
            let batch = run_simulation(&workflows, batch_s.as_mut(), cluster, &config);
            let name = batch.scheduler.clone();
            if label == "failover" {
                assert_eq!(batch.recovery.as_ref().unwrap().master_crashes, 1, "{name}");
            }
            let reference = strip(batch);

            let path = temp_feed_path(label);
            std::fs::remove_file(&path).ok();
            let mut follow = FollowSource::file(&path);
            let stop = follow.stop_handle();
            let writer = {
                let text = jsonl.clone();
                let path = path.clone();
                std::thread::spawn(move || {
                    // The file comes into being with the first chunk;
                    // until then the source stays Pending.
                    let mut f = std::fs::OpenOptions::new()
                        .create(true)
                        .append(true)
                        .open(&path)
                        .unwrap();
                    for (i, line) in text.lines().enumerate() {
                        let bytes = line.as_bytes();
                        let mid = bytes.len() / 2;
                        f.write_all(&bytes[..mid]).unwrap();
                        if i < 4 {
                            // Give the reader a real chance to observe the
                            // torn record before the rest of it lands.
                            std::thread::sleep(std::time::Duration::from_millis(2));
                        }
                        f.write_all(&bytes[mid..]).unwrap();
                        f.write_all(b"\n").unwrap();
                    }
                    stop.stop();
                })
            };

            let (live, metrics) = try_run_simulation_clocked(
                &mut follow,
                follow_s.as_mut(),
                cluster,
                &config,
                None,
                None,
                &mut BlockingReplayClock,
            )
            .unwrap();
            writer.join().unwrap();
            std::fs::remove_file(&path).ok();
            assert!(follow.error().is_none(), "{label} {name}: clean tail parse");
            assert!(metrics.is_none(), "observability off");
            assert_eq!(strip(live), reference, "{label} {name}: live FollowSource");
        }
    }
}

/// Satellite: the clocked event loop under `SimClock` IS the streamed
/// event loop. For every scheduler, on a plain cluster and across a
/// mid-run master crash, `try_run_simulation_clocked(.., SimClock)`
/// produces a `SimReport` byte-identical to
/// `try_run_simulation_streamed` — the wall-clock plumbing costs replay
/// mode nothing.
#[test]
fn sim_clock_replay_matches_streamed_byte_for_byte() {
    let workflows = fig11_workflows();
    let plain = demo_cluster();
    let faulty = demo_cluster().with_faults(FaultConfig {
        master: MasterFaultConfig {
            mttr: SimDuration::from_secs(45),
            scripted: vec![SimTime::from_mins(8)],
            ..MasterFaultConfig::default()
        },
        ..FaultConfig::default()
    });
    let config = SimConfig::default();
    let strip = |mut r: SimReport| {
        r.scheduler_nanos = 0;
        serde_json::to_string(&r).unwrap()
    };

    for (cluster, label) in [(&plain, "plain"), (&faulty, "failover")] {
        for (mut streamed_s, mut clocked_s) in
            all_schedulers(96).into_iter().zip(all_schedulers(96))
        {
            let mut source = VecSource::new(workflows.clone());
            let streamed = try_run_simulation_streamed(
                &mut source,
                streamed_s.as_mut(),
                cluster,
                &config,
                None,
            )
            .unwrap();
            let name = streamed.scheduler.clone();

            let mut source = VecSource::new(workflows.clone());
            let (clocked, metrics) = try_run_simulation_clocked(
                &mut source,
                clocked_s.as_mut(),
                cluster,
                &config,
                None,
                None,
                &mut SimClock,
            )
            .unwrap();
            assert!(metrics.is_none(), "observability off");
            assert_eq!(strip(clocked), strip(streamed), "{label} {name}: SimClock");
        }
    }
}

/// Satellite: failure prediction costs nothing when off. With
/// `prediction: None` (the default) the report JSON carries no
/// "prediction" key and is byte-identical across the plain entry point, a
/// WOHA scheduler with the padding knob explicitly disabled, and the
/// streamed-ingestion entry point — on a clean cluster, under node
/// faults, and across a mid-run master crash recovered from checkpoint +
/// WAL replay. With prediction armed on the faulty clusters, the section
/// appears with live propensity state and every variant reproduces
/// byte-identically on a rerun (the WAL replays the health bumps too).
#[test]
fn prediction_off_is_invisible_and_on_survives_failover() {
    let workflows = fig11_workflows();
    let plain = demo_cluster();
    let node_faults = FaultConfig {
        mtbf: Some(SimDuration::from_mins(12)),
        mttr: SimDuration::from_mins(3),
        detect_missed_heartbeats: 2,
        blacklist_after: 0,
        ..FaultConfig::default()
    };
    let faulty = demo_cluster().with_faults(node_faults.clone());
    let failover = demo_cluster().with_faults(FaultConfig {
        master: MasterFaultConfig {
            mttr: SimDuration::from_secs(45),
            wal: true,
            scripted: vec![SimTime::from_mins(8)],
            ..MasterFaultConfig::default()
        },
        ..node_faults
    });
    let strip = |mut r: SimReport| {
        r.scheduler_nanos = 0;
        serde_json::to_string(&r).unwrap()
    };

    for (cluster, label) in [
        (&plain, "plain"),
        (&faulty, "faults"),
        (&failover, "failover"),
    ] {
        let config = SimConfig::default();
        let mut s = WohaScheduler::new(WohaConfig::new(PriorityPolicy::Lpf, 96));
        let reference = strip(run_simulation(&workflows, &mut s, cluster, &config));
        assert!(
            !reference.contains("\"prediction\""),
            "{label}: prediction off must not surface in the report"
        );

        let mut explicit_off = WohaScheduler::new(WohaConfig {
            padding: None,
            ..WohaConfig::new(PriorityPolicy::Lpf, 96)
        });
        let report = run_simulation(&workflows, &mut explicit_off, cluster, &config);
        assert_eq!(reference, strip(report), "{label}: padding: None");

        let mut source = VecSource::new(workflows.clone());
        let mut streamed_s = WohaScheduler::new(WohaConfig::new(PriorityPolicy::Lpf, 96));
        let streamed =
            try_run_simulation_streamed(&mut source, &mut streamed_s, cluster, &config, None)
                .unwrap();
        assert_eq!(reference, strip(streamed), "{label}: streamed ingestion");
    }

    // Prediction armed: the report gains live state, node crashes bump the
    // scores, and every variant — including WAL-replayed recovery and the
    // streamed path — is reproducible bit for bit.
    let armed = SimConfig {
        prediction: Some(PredictionConfig {
            risk_placement: true,
            ..PredictionConfig::default()
        }),
        ..SimConfig::default()
    };
    for (cluster, label) in [(&faulty, "faults"), (&failover, "failover")] {
        let run = || {
            let mut s = WohaScheduler::new(WohaConfig {
                padding: Some(PadConfig::new(SimDuration::from_mins(12))),
                ..WohaConfig::new(PriorityPolicy::Lpf, 96)
            });
            run_simulation(&workflows, &mut s, cluster, &armed)
        };
        let first = run();
        assert!(first.completed, "{label}");
        let p = first.prediction.as_ref().expect("prediction on reports");
        assert!(first.node_failures > 0, "{label}: faults must fire");
        assert!(
            p.node_propensity.iter().any(|&s| s > 0.0),
            "{label}: crashes must leave propensity"
        );
        assert!(p.plans_padded > 0, "{label}: padding must engage");
        assert_eq!(strip(first.clone()), strip(run()), "{label}: deterministic");

        let mut source = VecSource::new(workflows.clone());
        let mut streamed_s = WohaScheduler::new(WohaConfig {
            padding: Some(PadConfig::new(SimDuration::from_mins(12))),
            ..WohaConfig::new(PriorityPolicy::Lpf, 96)
        });
        let streamed =
            try_run_simulation_streamed(&mut source, &mut streamed_s, cluster, &armed, None)
                .unwrap();
        assert_eq!(
            strip(first),
            strip(streamed),
            "{label}: streamed ingestion with prediction on"
        );
    }
}
