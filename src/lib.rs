//! # WOHA — Deadline-Aware Map-Reduce Workflow Scheduling
//!
//! A from-scratch Rust reproduction of *"WOHA: Deadline-Aware Map-Reduce
//! Workflow Scheduling Framework over Hadoop Clusters"* (Shen Li et al.,
//! ICDCS 2014), including the Hadoop-1 cluster simulator substrate the
//! evaluation runs on.
//!
//! This facade crate re-exports the four workspace crates:
//!
//! - [`model`] (`woha-model`) — workflow DAGs, simulated time, XML configs;
//! - [`trace`] (`woha-trace`) — synthetic workloads calibrated to the
//!   paper's published Yahoo! trace statistics;
//! - [`sim`] (`woha-sim`) — the discrete-event Hadoop-1 cluster simulator;
//! - [`core`] (`woha-core`) — scheduling plans, the Double Skip List, the
//!   progress-based WOHA scheduler, and the FIFO/Fair/EDF baselines;
//! - [`serve`] (`woha-serve`) — the long-running scheduler service: live
//!   workload feeds, wall-clock pacing, backpressure, multi-tenant
//!   admission, and cooperative shutdown.
//!
//! # Quickstart
//!
//! ```
//! use woha::prelude::*;
//!
//! // Describe a two-job workflow with a 20-minute deadline.
//! let mut b = WorkflowBuilder::new("etl");
//! let extract = b.add_job(JobSpec::new("extract", 8, 2,
//!     SimDuration::from_secs(30), SimDuration::from_secs(60)));
//! let report = b.add_job(JobSpec::new("report", 4, 1,
//!     SimDuration::from_secs(20), SimDuration::from_secs(120)));
//! b.add_dependency(extract, report);
//! b.relative_deadline(SimDuration::from_mins(20));
//! let workflow = b.build().unwrap();
//!
//! // Run it under WOHA on a 4-node cluster.
//! let cluster = ClusterConfig::uniform(4, 2, 1);
//! let mut scheduler = WohaScheduler::new(WohaConfig::new(PriorityPolicy::Lpf, 12));
//! let result = run_simulation(&[workflow], &mut scheduler, &cluster,
//!     &SimConfig::default());
//! assert_eq!(result.deadline_misses(), 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use woha_core as core;
pub use woha_model as model;
pub use woha_serve as serve;
pub use woha_sim as sim;
pub use woha_trace as trace;

/// The commonly-used types, one `use` away.
pub mod prelude {
    pub use woha_core::{
        generate_plan, generate_plan_with_budget, generate_reqs, padded_budget, rework_fraction,
        AdmissionController, CapMode, EdfScheduler, FairScheduler, FifoScheduler, JobPriorities,
        PadConfig, PriorityPolicy, QueueStrategy, RejectReason, SchedulingPlan, WohaConfig,
        WohaScheduler,
    };
    pub use woha_model::{
        JobId, JobSpec, ModelError, NodeId, SimDuration, SimTime, SlotKind, WorkflowBuilder,
        WorkflowConfig, WorkflowId, WorkflowSpec,
    };
    pub use woha_serve::{
        run_service, ClockMode, ServeConfig, ServiceOutcome, ShutdownCause, ShutdownConfig,
        ShutdownSignal, TenantsConfig,
    };
    pub use woha_sim::{
        run_simulation, run_simulation_observed, run_simulation_streamed, try_run_simulation,
        try_run_simulation_clocked, try_run_simulation_observed, try_run_simulation_streamed,
        try_run_simulation_streamed_observed, AdmissionGate, AdmissionReport, AdmitAll,
        ClusterConfig, FaultConfig, JsonlTraceSink, LocalityConfig, MasterFaultConfig, MemorySink,
        ObservabilityConfig, Observations, PredictionConfig, PredictionReport, RecoveryReport,
        RejectCount, SchedulerState, ScriptedFault, SimConfig, SimError, SimReport,
        SpeculationConfig, TraceEvent, TraceRecord, TraceSink, WorkflowPool, WorkflowScheduler,
    };
    pub use woha_sim::{ArrivalBuffer, Clock, ServiceStats, SimClock, SourceWait, WallClock};
    pub use woha_trace::{
        drain, to_jsonl,
        workload::{DeadlineRule, ReleasePattern, Workload},
        yahoo::{yahoo_workflows, YahooTraceConfig},
        ChannelSource, FollowSource, GeneratorSource, JsonlSource, Rng, SourcePoll, SourceStop,
        VecSource, WorkloadSource,
    };
}
