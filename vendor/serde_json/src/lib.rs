//! Offline stand-in for `serde_json`, rendering the vendored `serde`
//! [`Value`] tree to JSON text and parsing it back.
//!
//! Output is deterministic: object keys keep field declaration order and
//! floats use Rust's shortest round-trip formatting, so serializing the
//! same report twice yields byte-identical text (the determinism tests
//! depend on this).

#![forbid(unsafe_code)]

use serde::{Deserialize, Serialize, Value};
use std::fmt;

/// JSON serialization/parse failure.
#[derive(Debug, Clone)]
pub struct Error(String);

impl Error {
    fn new(msg: impl fmt::Display) -> Self {
        Error(msg.to_string())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Error(e.to_string())
    }
}

/// Serialize `value` to a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0)?;
    Ok(out)
}

/// Serialize `value` to pretty-printed JSON (two-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0)?;
    Ok(out)
}

/// Parse a JSON document into `T`.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let value = parse_value(s)?;
    Ok(T::from_value(&value)?)
}

fn write_value(
    out: &mut String,
    v: &Value,
    indent: Option<usize>,
    depth: usize,
) -> Result<(), Error> {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::U128(n) => out.push_str(&n.to_string()),
        Value::F64(x) => {
            if !x.is_finite() {
                return Err(Error::new("cannot serialize non-finite float"));
            }
            // Rust's shortest round-trip form; "1" (not "1.0") is fine
            // because deserialization accepts integers for floats.
            out.push_str(&x.to_string());
        }
        Value::Str(s) => write_string(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return Ok(());
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1)?;
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return Ok(());
            }
            out.push('{');
            for (i, (k, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_string(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, val, indent, depth + 1)?;
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
    Ok(())
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{8}' => out.push_str("\\b"),
            '\u{c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse_value(s: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&mut self) -> Result<u8, Error> {
        self.skip_ws();
        self.bytes
            .get(self.pos)
            .copied()
            .ok_or_else(|| Error::new("unexpected end of input"))
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek()? == b {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn literal(&mut self, word: &str, value: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(Error::new(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek()? {
            b'n' => self.literal("null", Value::Null),
            b't' => self.literal("true", Value::Bool(true)),
            b'f' => self.literal("false", Value::Bool(false)),
            b'"' => self.string().map(Value::Str),
            b'[' => self.array(),
            b'{' => self.object(),
            b'-' | b'0'..=b'9' => self.number(),
            other => Err(Error::new(format!(
                "unexpected character `{}` at byte {}",
                other as char, self.pos
            ))),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek()? == b']' {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.value()?);
            match self.peek()? {
                b',' => self.pos += 1,
                b']' => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => {
                    return Err(Error::new(format!(
                        "expected `,` or `]` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        if self.peek()? == b'}' {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            if self.peek()? != b'"' {
                return Err(Error::new(format!(
                    "expected object key at byte {}",
                    self.pos
                )));
            }
            let key = self.string()?;
            self.expect(b':')?;
            let val = self.value()?;
            entries.push((key, val));
            match self.peek()? {
                b',' => self.pos += 1,
                b'}' => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                _ => {
                    return Err(Error::new(format!(
                        "expected `,` or `}}` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let b = *self
                .bytes
                .get(self.pos)
                .ok_or_else(|| Error::new("unterminated string"))?;
            match b {
                b'"' => {
                    self.pos += 1;
                    return Ok(out);
                }
                b'\\' => {
                    self.pos += 1;
                    let esc = *self
                        .bytes
                        .get(self.pos)
                        .ok_or_else(|| Error::new("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair.
                                if self.bytes.get(self.pos) == Some(&b'\\')
                                    && self.bytes.get(self.pos + 1) == Some(&b'u')
                                {
                                    self.pos += 2;
                                    let lo = self.hex4()?;
                                    let code = 0x10000
                                        + ((hi - 0xD800) << 10)
                                        + (lo.wrapping_sub(0xDC00) & 0x3FF);
                                    char::from_u32(code)
                                } else {
                                    None
                                }
                            } else {
                                char::from_u32(hi)
                            };
                            out.push(c.ok_or_else(|| Error::new("invalid \\u escape"))?);
                        }
                        other => {
                            return Err(Error::new(format!("invalid escape `\\{}`", other as char)))
                        }
                    }
                }
                _ => {
                    // Consume one UTF-8 scalar (input is a &str, so the
                    // byte stream is valid UTF-8).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest)
                        .map_err(|_| Error::new("invalid UTF-8 in string"))?;
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        let end = self.pos + 4;
        let slice = self
            .bytes
            .get(self.pos..end)
            .ok_or_else(|| Error::new("truncated \\u escape"))?;
        let s = std::str::from_utf8(slice).map_err(|_| Error::new("invalid \\u escape"))?;
        let n = u32::from_str_radix(s, 16).map_err(|_| Error::new("invalid \\u escape"))?;
        self.pos = end;
        Ok(n)
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.bytes.get(self.pos) == Some(&b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number"))?;
        if !is_float {
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::U64(n));
            }
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Value::I64(n));
            }
            if let Ok(n) = text.parse::<u128>() {
                return Ok(Value::U128(n));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| Error::new(format!("invalid number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_scalars() {
        assert_eq!(to_string(&42u64).unwrap(), "42");
        assert_eq!(from_str::<u64>("42").unwrap(), 42);
        assert_eq!(from_str::<i64>("-7").unwrap(), -7);
        assert_eq!(from_str::<f64>("1.25").unwrap(), 1.25);
        assert_eq!(from_str::<f64>("3").unwrap(), 3.0);
        let big = u128::from(u64::MAX) + 1;
        assert_eq!(from_str::<u128>(&to_string(&big).unwrap()).unwrap(), big);
    }

    #[test]
    fn roundtrip_strings() {
        let s = "line\n\"quoted\" \\ tab\t ünïcode \u{1F600}".to_string();
        let json = to_string(&s).unwrap();
        assert_eq!(from_str::<String>(&json).unwrap(), s);
        assert_eq!(from_str::<String>(r#""😀""#).unwrap(), "\u{1F600}");
    }

    #[test]
    fn roundtrip_containers() {
        let v = vec![Some(1u32), None, Some(3)];
        let json = to_string(&v).unwrap();
        assert_eq!(json, "[1,null,3]");
        assert_eq!(from_str::<Vec<Option<u32>>>(&json).unwrap(), v);
    }

    #[test]
    fn pretty_output_shape() {
        #[derive(serde::Serialize)]
        struct P {
            a: u32,
            b: Vec<u32>,
        }
        let p = P { a: 1, b: vec![2] };
        let pretty = to_string_pretty(&p).unwrap();
        assert_eq!(pretty, "{\n  \"a\": 1,\n  \"b\": [\n    2\n  ]\n}");
    }

    #[test]
    fn float_roundtrip_exact() {
        for x in [0.1f64, 1.0, -2.5e-3, 1e300, 123456.789] {
            let json = to_string(&x).unwrap();
            assert_eq!(from_str::<f64>(&json).unwrap(), x);
        }
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str::<u64>("").is_err());
        assert!(from_str::<u64>("4 2").is_err());
        assert!(from_str::<Vec<u32>>("[1,").is_err());
        assert!(from_str::<String>("\"abc").is_err());
    }
}
