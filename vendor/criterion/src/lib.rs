//! Offline stand-in for `criterion`.
//!
//! Provides the API surface the workspace's benches use — groups,
//! `bench_with_input`, `BenchmarkId`, `iter` — backed by a simple
//! wall-clock timing loop that prints a mean ns/iter per benchmark. No
//! statistics, plots, or baselines; the goal is that `cargo bench`
//! compiles and produces useful relative numbers offline.

#![forbid(unsafe_code)]

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark harness handle.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.into(),
            sample_size: 100,
        }
    }

    /// Run a standalone benchmark.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(&id.to_string(), 100, &mut f);
        self
    }
}

/// A named set of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Number of samples per benchmark (kept for API compatibility; the
    /// shim uses it to scale total iterations).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Benchmark a closure parameterised by `input`.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl fmt::Display,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id);
        run_benchmark(&label, self.sample_size, &mut |b| f(b, input));
        self
    }

    /// Benchmark a closure with no parameter.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id);
        run_benchmark(&label, self.sample_size, &mut f);
        self
    }

    /// Finish the group (no-op beyond API compatibility).
    pub fn finish(self) {}
}

/// Identifier combining a function name and a parameter.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `function_name/parameter`.
    pub fn new(function_name: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            label: format!("{function_name}/{parameter}"),
        }
    }

    /// Just the parameter.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label)
    }
}

/// Timing handle passed to benchmark closures.
pub struct Bencher {
    iterations: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `routine`, running it enough times to smooth noise.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iterations {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(label: &str, sample_size: usize, f: &mut F) {
    // Calibrate: run once to estimate per-iteration cost.
    let mut b = Bencher {
        iterations: 1,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    let per_iter = b.elapsed.max(Duration::from_nanos(1));
    // Aim for ~10ms of work or `sample_size` iterations, whichever is
    // larger, capped to keep slow benches bounded.
    let target = Duration::from_millis(10);
    let iterations = (target.as_nanos() / per_iter.as_nanos().max(1))
        .clamp(sample_size as u128, 1_000_000) as u64;
    let mut b = Bencher {
        iterations,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    let ns_per_iter = b.elapsed.as_nanos() as f64 / iterations as f64;
    println!("bench: {label:<50} {ns_per_iter:>14.1} ns/iter ({iterations} iters)");
}

/// Collect benchmark functions into a single runner, mirroring
/// criterion's macro of the same name.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Entry point running one or more `criterion_group!`s.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("shim");
        group.sample_size(10);
        group.bench_with_input(BenchmarkId::new("sum", 8), &8u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        group.bench_function("noop", |b| b.iter(|| 1 + 1));
        group.finish();
    }

    #[test]
    fn harness_runs() {
        criterion_group!(benches, sample_bench);
        benches();
    }
}
