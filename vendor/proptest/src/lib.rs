//! Offline stand-in for `proptest`.
//!
//! Implements the slice of the proptest API this workspace's test suites
//! use: the `proptest!` macro, `Strategy` with `prop_map`, range and
//! tuple strategies, `collection::vec`, regex-subset string strategies,
//! and the `prop_assert!`/`prop_assert_eq!` macros. Case generation is
//! fully deterministic — each test's RNG is seeded from the test name
//! and the case index, so failures reproduce exactly without persisted
//! regression files. There is no shrinking: a failing case reports its
//! inputs via the assertion message instead.

#![forbid(unsafe_code)]

use std::fmt;
use std::ops::Range;

/// How many cases each property runs.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // The real default is 256; this shim keeps it.
        ProptestConfig { cases: 256 }
    }
}

/// A failed `prop_assert!` / `prop_assert_eq!`.
#[derive(Debug)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// Build a failure with the given message.
    pub fn fail(msg: impl fmt::Display) -> Self {
        TestCaseError(msg.to_string())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// Deterministic splitmix64 generator; seeded per (test name, case).
pub struct TestRng(u64);

impl TestRng {
    /// RNG for one case of one named test.
    pub fn for_case(test_name: &str, case: u32) -> Self {
        // FNV-1a over the name, mixed with the case index.
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in test_name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng(h ^ (u64::from(case).wrapping_mul(0x9E37_79B9_7F4A_7C15)))
    }

    /// Next raw 64-bit value (splitmix64).
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)` with 53-bit precision.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform in `[lo, hi)`; `hi > lo`.
    pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        debug_assert!(hi > lo);
        lo + self.next_u64() % (hi - lo)
    }
}

/// A generator of values of type `Self::Value`.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Map generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.end > self.start, "empty range strategy");
                let span = (self.end as u64) - (self.start as u64);
                self.start + (rng.next_u64() % span) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize);

macro_rules! impl_signed_range {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.end > self.start, "empty range strategy");
                let span = (self.end as i64).wrapping_sub(self.start as i64) as u64;
                (self.start as i64).wrapping_add((rng.next_u64() % span) as i64) as $t
            }
        }
    )*};
}

impl_signed_range!(i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.end > self.start, "empty range strategy");
        let x = self.start + rng.next_f64() * (self.end - self.start);
        // Guard against rounding up to the excluded endpoint.
        if x >= self.end {
            self.start
        } else {
            x
        }
    }
}

/// A `&str` is a strategy generating strings from a regex subset:
/// literal characters, `.`, `[...]` classes (with ranges), and `{n}` /
/// `{m,n}` repetition.
impl Strategy for &str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        let pattern = parse_pattern(self);
        let mut out = String::new();
        for (set, lo, hi) in &pattern {
            let n = if hi > lo {
                rng.range_u64(*lo as u64, *hi as u64 + 1) as usize
            } else {
                *lo
            };
            for _ in 0..n {
                let idx = rng.range_u64(0, set.len() as u64) as usize;
                out.push(set[idx]);
            }
        }
        out
    }
}

/// One pattern element: candidate characters plus repetition bounds.
type PatternElement = (Vec<char>, usize, usize);

fn parse_pattern(pattern: &str) -> Vec<PatternElement> {
    let chars: Vec<char> = pattern.chars().collect();
    let mut elements: Vec<PatternElement> = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        let set: Vec<char> = match chars[i] {
            '.' => {
                i += 1;
                (' '..='~').collect()
            }
            '[' => {
                i += 1;
                let mut set = Vec::new();
                while i < chars.len() && chars[i] != ']' {
                    // `a-z` range unless `-` is the last char of the class.
                    if i + 2 < chars.len() && chars[i + 1] == '-' && chars[i + 2] != ']' {
                        let (lo, hi) = (chars[i], chars[i + 2]);
                        assert!(lo <= hi, "invalid range in pattern `{pattern}`");
                        set.extend(lo..=hi);
                        i += 3;
                    } else {
                        let c = if chars[i] == '\\' && i + 1 < chars.len() {
                            i += 1;
                            chars[i]
                        } else {
                            chars[i]
                        };
                        set.push(c);
                        i += 1;
                    }
                }
                assert!(i < chars.len(), "unterminated class in pattern `{pattern}`");
                i += 1; // closing ']'
                set
            }
            '\\' if i + 1 < chars.len() => {
                i += 2;
                vec![chars[i - 1]]
            }
            c => {
                i += 1;
                vec![c]
            }
        };
        assert!(
            !set.is_empty(),
            "empty character class in pattern `{pattern}`"
        );
        // Optional `{n}` or `{m,n}` repetition.
        let (lo, hi) = if i < chars.len() && chars[i] == '{' {
            let close = chars[i..]
                .iter()
                .position(|&c| c == '}')
                .map(|p| i + p)
                .unwrap_or_else(|| panic!("unterminated repetition in `{pattern}`"));
            let body: String = chars[i + 1..close].iter().collect();
            i = close + 1;
            match body.split_once(',') {
                Some((m, n)) => (
                    m.trim().parse().expect("repetition lower bound"),
                    n.trim().parse().expect("repetition upper bound"),
                ),
                None => {
                    let n: usize = body.trim().parse().expect("repetition count");
                    (n, n)
                }
            }
        } else {
            (1, 1)
        };
        elements.push((set, lo, hi));
    }
    elements
}

macro_rules! impl_tuple_strategy {
    ($(($($name:ident),+);)*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A);
    (A, B);
    (A, B, C);
    (A, B, C, D);
    (A, B, C, D, E);
    (A, B, C, D, E, F);
}

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// A size specification: an exact length or a half-open range.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.end > r.start, "empty vec size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    /// Strategy generating `Vec`s of values from `element`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generate vectors whose length falls in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = if self.size.hi > self.size.lo {
                rng.range_u64(self.size.lo as u64, self.size.hi as u64 + 1) as usize
            } else {
                self.size.lo
            };
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// The usual glob import, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, proptest, ProptestConfig, Strategy,
    };
}

/// Assert a condition inside a `proptest!` body; on failure the current
/// case aborts with the formatted message.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Assert equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l == *__r,
            "assertion failed: `{:?}` == `{:?}`",
            __l,
            __r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(*__l == *__r, $($fmt)+);
    }};
}

/// Assert inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(*__l != *__r, "assertion failed: `{:?}` != `{:?}`", __l, __r);
    }};
}

/// Define property tests: each `fn` runs its body once per generated
/// case. Inputs are drawn from the strategies after `in`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ($cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $cfg;
            let __strategy = ( $($strat,)+ );
            for __case in 0..__config.cases {
                let mut __rng = $crate::TestRng::for_case(stringify!($name), __case);
                let ( $($arg,)+ ) = $crate::Strategy::generate(&__strategy, &mut __rng);
                let __result: ::std::result::Result<(), $crate::TestCaseError> =
                    (|| -> ::std::result::Result<(), $crate::TestCaseError> {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                if let ::std::result::Result::Err(e) = __result {
                    panic!(
                        "proptest `{}` failed at case {}/{}: {}",
                        stringify!($name),
                        __case,
                        __config.cases,
                        e
                    );
                }
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use super::collection::vec;
    use super::prelude::*;
    use super::TestRng;

    #[test]
    fn rng_is_deterministic() {
        let mut a = TestRng::for_case("t", 3);
        let mut b = TestRng::for_case("t", 3);
        for _ in 0..10 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn pattern_strategy_respects_class_and_len() {
        let mut rng = TestRng::for_case("pat", 0);
        for _ in 0..200 {
            let s = Strategy::generate(&"[a-c]{2,5}", &mut rng);
            assert!((2..=5).contains(&s.len()));
            assert!(s.chars().all(|c| ('a'..='c').contains(&c)));
        }
        let fixed = Strategy::generate(&"x[0-9]{3}", &mut rng);
        assert_eq!(fixed.len(), 4);
        assert!(fixed.starts_with('x'));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Ranges stay in bounds; tuples and vec compose.
        #[test]
        fn ranges_in_bounds(
            x in 5u64..60,
            y in 0.0f64..1.0,
            v in vec((0usize..4, 1u32..9), 0..6),
        ) {
            prop_assert!((5..60).contains(&x));
            prop_assert!((0.0..1.0).contains(&y));
            prop_assert!(v.len() < 6);
            for (a, b) in v {
                prop_assert!(a < 4);
                prop_assert!((1..9).contains(&b));
            }
        }

        /// prop_map transforms the generated value.
        #[test]
        fn map_applies(n in (1u32..10).prop_map(|n| n * 2)) {
            prop_assert!(n % 2 == 0);
            prop_assert!((2..20).contains(&n));
        }
    }
}
