//! Offline stand-in for `serde_derive`.
//!
//! The real crate is unavailable in this build environment (no registry
//! access), so the derives are reimplemented here against the vendored
//! `serde` shim's value-tree model: `Serialize::to_value` /
//! `Deserialize::from_value`. The item is parsed directly from the raw
//! `proc_macro::TokenStream` (no `syn`/`quote`), which is enough because
//! the workspace only derives on non-generic items: named structs,
//! tuple/newtype structs, and enums with unit or tuple variants. Named
//! struct fields may carry the `#[serde(default)]` and
//! `#[serde(skip_serializing_if = "path")]` attributes; other `#[serde]`
//! attributes are rejected rather than silently ignored.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// One named-struct field plus the `#[serde(...)]` attributes it carries.
struct Field {
    name: String,
    /// `#[serde(default)]`: a missing key deserializes to `Default::default()`.
    default: bool,
    /// `#[serde(skip_serializing_if = "path")]`: omit the key when
    /// `path(&self.field)` is true.
    skip_serializing_if: Option<String>,
}

/// The shapes of items this shim knows how to derive for.
enum Shape {
    NamedStruct {
        name: String,
        fields: Vec<Field>,
    },
    TupleStruct {
        name: String,
        arity: usize,
    },
    UnitStruct {
        name: String,
    },
    Enum {
        name: String,
        variants: Vec<(String, usize)>,
    },
}

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let shape = parse_item(input);
    let body = match &shape {
        Shape::NamedStruct { name, fields } => {
            if fields.iter().any(|f| f.skip_serializing_if.is_some()) {
                let mut stmts = String::new();
                for f in fields {
                    let fname = &f.name;
                    let push = format!(
                        "__fields.push((::std::string::String::from(\"{fname}\"), \
                         ::serde::Serialize::to_value(&self.{fname})));"
                    );
                    match &f.skip_serializing_if {
                        Some(pred) => {
                            stmts.push_str(&format!("if !{pred}(&self.{fname}) {{ {push} }}\n"));
                        }
                        None => {
                            stmts.push_str(&push);
                            stmts.push('\n');
                        }
                    }
                }
                format!(
                    "impl ::serde::Serialize for {name} {{\n\
                         fn to_value(&self) -> ::serde::Value {{\n\
                             let mut __fields: ::std::vec::Vec<(::std::string::String, \
                                 ::serde::Value)> = ::std::vec::Vec::new();\n\
                             {stmts}\
                             ::serde::Value::Object(__fields)\n\
                         }}\n\
                     }}"
                )
            } else {
                let mut entries = String::new();
                for f in fields {
                    let fname = &f.name;
                    entries.push_str(&format!(
                        "(::std::string::String::from(\"{fname}\"), \
                         ::serde::Serialize::to_value(&self.{fname})),"
                    ));
                }
                format!(
                    "impl ::serde::Serialize for {name} {{\n\
                         fn to_value(&self) -> ::serde::Value {{\n\
                             ::serde::Value::Object(::std::vec![{entries}])\n\
                         }}\n\
                     }}"
                )
            }
        }
        Shape::TupleStruct { name, arity: 1 } => format!(
            "impl ::serde::Serialize for {name} {{\n\
                 fn to_value(&self) -> ::serde::Value {{\n\
                     ::serde::Serialize::to_value(&self.0)\n\
                 }}\n\
             }}"
        ),
        Shape::TupleStruct { name, arity } => {
            let mut entries = String::new();
            for i in 0..*arity {
                entries.push_str(&format!("::serde::Serialize::to_value(&self.{i}),"));
            }
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         ::serde::Value::Array(::std::vec![{entries}])\n\
                     }}\n\
                 }}"
            )
        }
        Shape::UnitStruct { name } => format!(
            "impl ::serde::Serialize for {name} {{\n\
                 fn to_value(&self) -> ::serde::Value {{ ::serde::Value::Null }}\n\
             }}"
        ),
        Shape::Enum { name, variants } => {
            let mut arms = String::new();
            for (v, arity) in variants {
                match arity {
                    0 => arms.push_str(&format!(
                        "{name}::{v} => \
                         ::serde::Value::Str(::std::string::String::from(\"{v}\")),"
                    )),
                    1 => arms.push_str(&format!(
                        "{name}::{v}(__f0) => ::serde::Value::Object(::std::vec![(\
                             ::std::string::String::from(\"{v}\"), \
                             ::serde::Serialize::to_value(__f0))]),"
                    )),
                    n => {
                        let binders: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                        let elems: Vec<String> = binders
                            .iter()
                            .map(|b| format!("::serde::Serialize::to_value({b})"))
                            .collect();
                        arms.push_str(&format!(
                            "{name}::{v}({}) => ::serde::Value::Object(::std::vec![(\
                                 ::std::string::String::from(\"{v}\"), \
                                 ::serde::Value::Array(::std::vec![{}]))]),",
                            binders.join(","),
                            elems.join(",")
                        ));
                    }
                }
            }
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         match self {{ {arms} }}\n\
                     }}\n\
                 }}"
            )
        }
    };
    emit(&body)
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let shape = parse_item(input);
    let body = match &shape {
        Shape::NamedStruct { name, fields } => {
            let mut entries = String::new();
            for f in fields {
                let fname = &f.name;
                let helper = if f.default {
                    "__field_or_default"
                } else {
                    "__field"
                };
                entries.push_str(&format!("{fname}: ::serde::{helper}(__obj, \"{fname}\")?,"));
            }
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(__v: &::serde::Value) \
                         -> ::std::result::Result<Self, ::serde::Error> {{\n\
                         let __obj = __v.as_object().ok_or_else(|| \
                             ::serde::Error::custom(\"expected object for `{name}`\"))?;\n\
                         ::std::result::Result::Ok({name} {{ {entries} }})\n\
                     }}\n\
                 }}"
            )
        }
        Shape::TupleStruct { name, arity: 1 } => format!(
            "impl ::serde::Deserialize for {name} {{\n\
                 fn from_value(__v: &::serde::Value) \
                     -> ::std::result::Result<Self, ::serde::Error> {{\n\
                     ::std::result::Result::Ok({name}(::serde::Deserialize::from_value(__v)?))\n\
                 }}\n\
             }}"
        ),
        Shape::TupleStruct { name, arity } => {
            let elems: Vec<String> = (0..*arity)
                .map(|i| format!("::serde::Deserialize::from_value(&__arr[{i}])?"))
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(__v: &::serde::Value) \
                         -> ::std::result::Result<Self, ::serde::Error> {{\n\
                         let __arr = __v.as_array().ok_or_else(|| \
                             ::serde::Error::custom(\"expected array for `{name}`\"))?;\n\
                         if __arr.len() != {arity} {{\n\
                             return ::std::result::Result::Err(::serde::Error::custom(\
                                 \"wrong tuple arity for `{name}`\"));\n\
                         }}\n\
                         ::std::result::Result::Ok({name}({}))\n\
                     }}\n\
                 }}",
                elems.join(",")
            )
        }
        Shape::UnitStruct { name } => format!(
            "impl ::serde::Deserialize for {name} {{\n\
                 fn from_value(_v: &::serde::Value) \
                     -> ::std::result::Result<Self, ::serde::Error> {{\n\
                     ::std::result::Result::Ok({name})\n\
                 }}\n\
             }}"
        ),
        Shape::Enum { name, variants } => {
            let unit: Vec<&(String, usize)> = variants.iter().filter(|(_, a)| *a == 0).collect();
            let data: Vec<&(String, usize)> = variants.iter().filter(|(_, a)| *a > 0).collect();
            let mut code = String::new();
            if !unit.is_empty() {
                let mut arms = String::new();
                for (v, _) in &unit {
                    arms.push_str(&format!(
                        "\"{v}\" => return ::std::result::Result::Ok({name}::{v}),"
                    ));
                }
                code.push_str(&format!(
                    "if let ::std::option::Option::Some(__s) = __v.as_str() {{\n\
                         match __s {{ {arms} _ => {{}} }}\n\
                     }}\n"
                ));
            }
            if !data.is_empty() {
                let mut arms = String::new();
                for (v, arity) in &data {
                    if *arity == 1 {
                        arms.push_str(&format!(
                            "\"{v}\" => return ::std::result::Result::Ok(\
                                 {name}::{v}(::serde::Deserialize::from_value(__val)?)),"
                        ));
                    } else {
                        let elems: Vec<String> = (0..*arity)
                            .map(|i| format!("::serde::Deserialize::from_value(&__arr[{i}])?"))
                            .collect();
                        arms.push_str(&format!(
                            "\"{v}\" => {{\n\
                                 let __arr = __val.as_array().ok_or_else(|| \
                                     ::serde::Error::custom(\"expected array for `{name}::{v}`\"))?;\n\
                                 if __arr.len() != {arity} {{\n\
                                     return ::std::result::Result::Err(::serde::Error::custom(\
                                         \"wrong arity for `{name}::{v}`\"));\n\
                                 }}\n\
                                 return ::std::result::Result::Ok({name}::{v}({}));\n\
                             }}",
                            elems.join(",")
                        ));
                    }
                }
                code.push_str(&format!(
                    "if let ::std::option::Option::Some(__obj) = __v.as_object() {{\n\
                         if __obj.len() == 1 {{\n\
                             let (__k, __val) = &__obj[0];\n\
                             match __k.as_str() {{ {arms} _ => {{}} }}\n\
                         }}\n\
                     }}\n"
                ));
            }
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(__v: &::serde::Value) \
                         -> ::std::result::Result<Self, ::serde::Error> {{\n\
                         {code}\
                         ::std::result::Result::Err(::serde::Error::custom(\
                             \"unrecognised value for enum `{name}`\"))\n\
                     }}\n\
                 }}"
            )
        }
    };
    emit(&body)
}

/// Wrap generated impls so lints never fire on derived code.
fn emit(body: &str) -> TokenStream {
    let wrapped = format!("#[automatically_derived]\n#[allow(clippy::all)]\n{body}");
    wrapped
        .parse()
        .unwrap_or_else(|e| panic!("serde_derive shim generated invalid code: {e}\n{wrapped}"))
}

/// Parse the derive input into a [`Shape`]. Panics (compile error) on
/// unsupported input — generics, struct-variant enums — since nothing in
/// this workspace uses them.
fn parse_item(input: TokenStream) -> Shape {
    let mut iter = input.into_iter().peekable();
    let mut kind = None;
    // Skip attributes and visibility until the `struct` / `enum` keyword.
    while let Some(tt) = iter.next() {
        match &tt {
            TokenTree::Punct(p) if p.as_char() == '#' => {
                iter.next(); // the `[...]` group
            }
            TokenTree::Ident(id) => {
                let s = id.to_string();
                if s == "pub" {
                    if let Some(TokenTree::Group(g)) = iter.peek() {
                        if g.delimiter() == Delimiter::Parenthesis {
                            iter.next(); // pub(crate) / pub(super)
                        }
                    }
                } else if s == "struct" || s == "enum" {
                    kind = Some(s);
                    break;
                }
            }
            _ => {}
        }
    }
    let kind = kind.expect("serde_derive shim: expected `struct` or `enum`");
    let name = match iter.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive shim: expected item name, got {other:?}"),
    };
    if matches!(&iter.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde_derive shim: generic items are not supported (item `{name}`)");
    }
    match iter.next() {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace && kind == "struct" => {
            Shape::NamedStruct {
                name,
                fields: parse_named_fields(g.stream()),
            }
        }
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
            Shape::TupleStruct {
                name,
                arity: count_top_level(g.stream()),
            }
        }
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace && kind == "enum" => {
            Shape::Enum {
                name,
                variants: parse_variants(g.stream()),
            }
        }
        Some(TokenTree::Punct(p)) if p.as_char() == ';' => Shape::UnitStruct { name },
        None => Shape::UnitStruct { name },
        other => panic!("serde_derive shim: unexpected token after `{name}`: {other:?}"),
    }
}

/// Fields of a named struct: names plus any `#[serde(...)]` attributes,
/// skipping doc/other attributes, visibility, and type tokens (commas
/// inside `<...>` do not split fields).
fn parse_named_fields(stream: TokenStream) -> Vec<Field> {
    let mut fields = Vec::new();
    let mut iter = stream.into_iter().peekable();
    loop {
        // Collect attributes and skip visibility until the field name.
        let mut default = false;
        let mut skip_serializing_if = None;
        let name = loop {
            match iter.next() {
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => match iter.next() {
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => {
                        parse_serde_attr(g.stream(), &mut default, &mut skip_serializing_if);
                    }
                    other => panic!("serde_derive shim: malformed attribute: {other:?}"),
                },
                Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                    if let Some(TokenTree::Group(g)) = iter.peek() {
                        if g.delimiter() == Delimiter::Parenthesis {
                            iter.next();
                        }
                    }
                }
                Some(TokenTree::Ident(id)) => break Some(id.to_string()),
                Some(other) => {
                    panic!("serde_derive shim: unexpected token in struct body: {other:?}")
                }
                None => break None,
            }
        };
        let Some(name) = name else { break };
        match iter.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("serde_derive shim: expected `:` after field `{name}`, got {other:?}"),
        }
        fields.push(Field {
            name,
            default,
            skip_serializing_if,
        });
        // Consume the type up to the next field-separating comma.
        let mut angle = 0i32;
        for tt in iter.by_ref() {
            if let TokenTree::Punct(p) = &tt {
                match p.as_char() {
                    '<' => angle += 1,
                    '>' => angle -= 1,
                    ',' if angle == 0 => break,
                    _ => {}
                }
            }
        }
    }
    fields
}

/// If `stream` (the inside of an attribute's `[...]`) is a
/// `serde(...)` attribute, record the options it carries. Doc comments
/// and non-serde attributes are ignored; unknown serde options panic so
/// they fail the build instead of silently changing semantics.
fn parse_serde_attr(
    stream: TokenStream,
    default: &mut bool,
    skip_serializing_if: &mut Option<String>,
) {
    let mut iter = stream.into_iter();
    match iter.next() {
        Some(TokenTree::Ident(id)) if id.to_string() == "serde" => {}
        _ => return, // not a serde attribute — ignore
    }
    let Some(TokenTree::Group(g)) = iter.next() else {
        panic!("serde_derive shim: expected `(...)` after `serde`");
    };
    let mut inner = g.stream().into_iter().peekable();
    while let Some(tt) = inner.next() {
        match tt {
            TokenTree::Punct(p) if p.as_char() == ',' => {}
            TokenTree::Ident(id) => match id.to_string().as_str() {
                "default" => *default = true,
                "skip_serializing_if" => match (inner.next(), inner.next()) {
                    (Some(TokenTree::Punct(eq)), Some(TokenTree::Literal(lit)))
                        if eq.as_char() == '=' =>
                    {
                        let s = lit.to_string();
                        let path = s
                            .strip_prefix('"')
                            .and_then(|s| s.strip_suffix('"'))
                            .unwrap_or_else(|| {
                                panic!(
                                    "serde_derive shim: skip_serializing_if expects a \
                                         string literal, got {s}"
                                )
                            });
                        *skip_serializing_if = Some(path.to_string());
                    }
                    other => panic!(
                        "serde_derive shim: expected `= \"path\"` after \
                             skip_serializing_if, got {other:?}"
                    ),
                },
                opt => panic!("serde_derive shim: unsupported serde option `{opt}`"),
            },
            other => panic!("serde_derive shim: unexpected token in serde attribute: {other:?}"),
        }
    }
}

/// `(name, arity)` for each enum variant; arity 0 is a unit variant.
fn parse_variants(stream: TokenStream) -> Vec<(String, usize)> {
    let mut variants = Vec::new();
    let mut iter = stream.into_iter().peekable();
    while let Some(tt) = iter.next() {
        match tt {
            TokenTree::Punct(p) if p.as_char() == '#' => {
                iter.next();
            }
            TokenTree::Punct(p) if p.as_char() == ',' => {}
            TokenTree::Ident(id) => {
                let arity = match iter.peek() {
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                        let stream = g.stream();
                        iter.next();
                        count_top_level(stream)
                    }
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => panic!(
                        "serde_derive shim: struct-style enum variants are not supported \
                         (variant `{id}`)"
                    ),
                    _ => 0,
                };
                variants.push((id.to_string(), arity));
            }
            other => panic!("serde_derive shim: unexpected token in enum body: {other:?}"),
        }
    }
    variants
}

/// Number of comma-separated elements at the top level of a token stream
/// (angle-bracket aware, tolerant of a trailing comma).
fn count_top_level(stream: TokenStream) -> usize {
    let mut count = 0usize;
    let mut saw_tokens = false;
    let mut angle = 0i32;
    for tt in stream {
        if let TokenTree::Punct(p) = &tt {
            match p.as_char() {
                '<' => angle += 1,
                '>' => angle -= 1,
                ',' if angle == 0 => {
                    count += 1;
                    saw_tokens = false;
                    continue;
                }
                _ => {}
            }
        }
        saw_tokens = true;
    }
    if saw_tokens {
        count += 1;
    }
    count
}
