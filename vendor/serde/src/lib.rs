//! Offline stand-in for `serde`.
//!
//! The registry is unreachable in this build environment, so the small
//! slice of serde this workspace relies on is reimplemented here as a
//! value-tree model: [`Serialize`] lowers a type to a [`Value`],
//! [`Deserialize`] rebuilds it, and the vendored `serde_json` renders
//! `Value` to and from JSON text. The derive macros live in the sibling
//! `serde_derive` shim and are re-exported here exactly like the real
//! crate's `derive` feature.

#![forbid(unsafe_code)]

// The derives emit `::serde::...` paths; make them resolve inside this
// crate's own tests too.
extern crate self as serde;

pub use serde_derive::{Deserialize, Serialize};

use std::fmt;

/// A self-describing tree of JSON-compatible data.
///
/// Objects preserve insertion order (a `Vec` of pairs, not a map), so
/// serialization output is deterministic and matches field declaration
/// order, which the byte-identical-report tests rely on.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Negative integers.
    I64(i64),
    /// Non-negative integers up to `u64::MAX`.
    U64(u64),
    /// Integers beyond `u64::MAX` (the simulator tracks slot-milliseconds
    /// in `u128`).
    U128(u128),
    /// Any number with a fractional part or exponent.
    F64(f64),
    /// JSON string.
    Str(String),
    /// JSON array.
    Array(Vec<Value>),
    /// JSON object, in insertion order.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// The string payload, if this is a `Str`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The ordered key/value pairs, if this is an `Object`.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(o) => Some(o),
            _ => None,
        }
    }

    /// The elements, if this is an `Array`.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// The boolean payload, if this is a `Bool`.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Whether this is `Null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Numeric payload widened to `u128`, if non-negative and integral.
    pub fn as_u128(&self) -> Option<u128> {
        match self {
            Value::U64(n) => Some(u128::from(*n)),
            Value::U128(n) => Some(*n),
            Value::I64(n) => u128::try_from(*n).ok(),
            _ => None,
        }
    }

    /// Numeric payload as `i64`, if integral and in range.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::I64(n) => Some(*n),
            Value::U64(n) => i64::try_from(*n).ok(),
            Value::U128(n) => i64::try_from(*n).ok(),
            _ => None,
        }
    }

    /// Numeric payload as `f64` (integers are converted).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::F64(x) => Some(*x),
            Value::U64(n) => Some(*n as f64),
            Value::U128(n) => Some(*n as f64),
            Value::I64(n) => Some(*n as f64),
            _ => None,
        }
    }
}

/// Serialization/deserialization failure.
#[derive(Debug, Clone)]
pub struct Error(String);

impl Error {
    /// Build an error from any displayable message.
    pub fn custom(msg: impl fmt::Display) -> Self {
        Error(msg.to_string())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// Lower a value into the [`Value`] tree.
pub trait Serialize {
    /// The value-tree form of `self`.
    fn to_value(&self) -> Value;
}

/// Rebuild a value from the [`Value`] tree.
pub trait Deserialize: Sized {
    /// Parse `v` into `Self`, or explain why it cannot be.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

/// Derive-macro helper: look up a struct field by name.
///
/// A missing key behaves like an explicit `null` so `Option` fields
/// tolerate hand-written JSON that omits them; any other type reports
/// the missing field.
pub fn __field<T: Deserialize>(obj: &[(String, Value)], name: &str) -> Result<T, Error> {
    match obj.iter().find(|(k, _)| k == name) {
        Some((_, v)) => T::from_value(v).map_err(|e| Error::custom(format!("field `{name}`: {e}"))),
        None => T::from_value(&Value::Null)
            .map_err(|_| Error::custom(format!("missing field `{name}`"))),
    }
}

/// Derive-macro helper for `#[serde(default)]` fields: a missing key (or
/// explicit `null`) produces `T::default()` instead of an error, so
/// encodings written before the field existed keep decoding.
pub fn __field_or_default<T: Deserialize + Default>(
    obj: &[(String, Value)],
    name: &str,
) -> Result<T, Error> {
    match obj.iter().find(|(k, _)| k == name) {
        Some((_, v)) if !v.is_null() => {
            T::from_value(v).map_err(|e| Error::custom(format!("field `{name}`: {e}")))
        }
        _ => Ok(T::default()),
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_bool().ok_or_else(|| Error::custom("expected boolean"))
    }
}

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::U64(u64::from(*self))
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let n = v
                    .as_u128()
                    .ok_or_else(|| Error::custom(concat!("expected ", stringify!($t))))?;
                <$t>::try_from(n).map_err(|_| Error::custom("integer out of range"))
            }
        }
    )*};
}

impl_unsigned!(u8, u16, u32, u64);

impl Serialize for usize {
    fn to_value(&self) -> Value {
        Value::U64(*self as u64)
    }
}

impl Deserialize for usize {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let n = v.as_u128().ok_or_else(|| Error::custom("expected usize"))?;
        usize::try_from(n).map_err(|_| Error::custom("integer out of range"))
    }
}

impl Serialize for u128 {
    fn to_value(&self) -> Value {
        match u64::try_from(*self) {
            Ok(n) => Value::U64(n),
            Err(_) => Value::U128(*self),
        }
    }
}

impl Deserialize for u128 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_u128().ok_or_else(|| Error::custom("expected u128"))
    }
}

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let n = i64::from(*self);
                if n >= 0 {
                    Value::U64(n as u64)
                } else {
                    Value::I64(n)
                }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let n = v
                    .as_i64()
                    .ok_or_else(|| Error::custom(concat!("expected ", stringify!($t))))?;
                <$t>::try_from(n).map_err(|_| Error::custom("integer out of range"))
            }
        }
    )*};
}

impl_signed!(i8, i16, i32, i64);

impl Serialize for isize {
    fn to_value(&self) -> Value {
        (*self as i64).to_value()
    }
}

impl Deserialize for isize {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let n = v.as_i64().ok_or_else(|| Error::custom("expected isize"))?;
        isize::try_from(n).map_err(|_| Error::custom("integer out of range"))
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_f64().ok_or_else(|| Error::custom("expected number"))
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F64(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_f64()
            .map(|x| x as f32)
            .ok_or_else(|| Error::custom("expected number"))
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_str()
            .map(str::to_owned)
            .ok_or_else(|| Error::custom("expected string"))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let s = v.as_str().ok_or_else(|| Error::custom("expected string"))?;
        let mut chars = s.chars();
        match (chars.next(), chars.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(Error::custom("expected single-character string")),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        if v.is_null() {
            Ok(None)
        } else {
            T::from_value(v).map(Some)
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_array()
            .ok_or_else(|| Error::custom("expected array"))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let items: Vec<T> = Vec::from_value(v)?;
        items
            .try_into()
            .map_err(|_| Error::custom(format!("expected array of length {N}")))
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_roundtrips() {
        for n in [0u64, 7, u64::MAX] {
            assert_eq!(u64::from_value(&n.to_value()).unwrap(), n);
        }
        let big = u128::from(u64::MAX) + 10;
        assert_eq!(u128::from_value(&big.to_value()).unwrap(), big);
        assert_eq!(i64::from_value(&(-4i64).to_value()).unwrap(), -4);
        assert_eq!(f64::from_value(&1.5f64.to_value()).unwrap(), 1.5);
        assert!(bool::from_value(&Value::Bool(true)).unwrap());
    }

    #[test]
    fn containers_roundtrip() {
        let v = vec![1u32, 2, 3];
        assert_eq!(Vec::<u32>::from_value(&v.to_value()).unwrap(), v);
        let a = [vec![1u32], vec![2, 3]];
        assert_eq!(<[Vec<u32>; 2]>::from_value(&a.to_value()).unwrap(), a);
        let o: Option<u32> = None;
        assert_eq!(Option::<u32>::from_value(&o.to_value()).unwrap(), None);
        assert_eq!(
            Option::<u32>::from_value(&Some(5u32).to_value()).unwrap(),
            Some(5)
        );
    }

    #[test]
    fn derive_struct_and_enum() {
        #[derive(Serialize, Deserialize, Debug, PartialEq, Clone)]
        struct Inner(u64);

        #[derive(Serialize, Deserialize, Debug, PartialEq, Clone)]
        enum Mode {
            Off,
            Fixed(u32),
        }

        #[derive(Serialize, Deserialize, Debug, PartialEq, Clone)]
        struct Outer {
            name: String,
            inner: Inner,
            mode: Mode,
            opt: Option<Vec<u32>>,
        }

        let x = Outer {
            name: "x".into(),
            inner: Inner(9),
            mode: Mode::Fixed(3),
            opt: Some(vec![1, 2]),
        };
        let v = x.to_value();
        assert_eq!(Outer::from_value(&v).unwrap(), x);
        let unit = Mode::Off.to_value();
        assert_eq!(unit, Value::Str("Off".into()));
        assert_eq!(Mode::from_value(&unit).unwrap(), Mode::Off);
    }

    #[test]
    fn derive_field_attributes_roundtrip() {
        #[derive(Serialize, Deserialize, Debug, PartialEq, Clone)]
        struct Versioned {
            id: u32,
            /// A field added after v1 encodings were written.
            #[serde(default, skip_serializing_if = "Option::is_none")]
            extra: Option<Vec<u64>>,
            #[serde(default)]
            count: u64,
        }

        // `None` omits the key entirely, so encodings match pre-field bytes.
        let none = Versioned {
            id: 1,
            extra: None,
            count: 7,
        };
        let v = none.to_value();
        let keys: Vec<&str> = v
            .as_object()
            .unwrap()
            .iter()
            .map(|(k, _)| k.as_str())
            .collect();
        assert_eq!(keys, ["id", "count"]);
        assert_eq!(Versioned::from_value(&v).unwrap(), none);

        // Encodings written before `extra`/`count` existed still decode.
        let legacy = Value::Object(vec![("id".into(), Value::U64(2))]);
        assert_eq!(
            Versioned::from_value(&legacy).unwrap(),
            Versioned {
                id: 2,
                extra: None,
                count: 0,
            }
        );

        // A populated optional field round-trips and keeps declaration order.
        let some = Versioned {
            id: 3,
            extra: Some(vec![9, 10]),
            count: 4,
        };
        let v = some.to_value();
        let keys: Vec<&str> = v
            .as_object()
            .unwrap()
            .iter()
            .map(|(k, _)| k.as_str())
            .collect();
        assert_eq!(keys, ["id", "extra", "count"]);
        assert_eq!(Versioned::from_value(&v).unwrap(), some);
    }
}
