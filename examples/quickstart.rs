//! Quickstart: build a deadline-bound workflow, run it on a simulated
//! Hadoop cluster under WOHA, and inspect the outcome.
//!
//! Run with: `cargo run --release --example quickstart`

use woha::prelude::*;

fn main() -> Result<(), ModelError> {
    // 1. Describe a workflow: a three-stage nightly ETL pipeline with a
    //    30-minute deadline.
    let mut builder = WorkflowBuilder::new("nightly-etl");
    let extract = builder.add_job(JobSpec::new(
        "extract",
        16, // mappers
        4,  // reducers
        SimDuration::from_secs(40),
        SimDuration::from_secs(90),
    ));
    let transform = builder.add_job(JobSpec::new(
        "transform",
        8,
        2,
        SimDuration::from_secs(30),
        SimDuration::from_secs(60),
    ));
    let load = builder.add_job(JobSpec::new(
        "load",
        4,
        1,
        SimDuration::from_secs(20),
        SimDuration::from_secs(120),
    ));
    builder.add_dependency(extract, transform);
    builder.add_dependency(transform, load);
    builder.relative_deadline(SimDuration::from_mins(30));
    let workflow = builder.build()?;

    println!("{workflow}");
    println!("critical path: {}", workflow.critical_path());
    println!("total work:    {}", workflow.total_work());

    // 2. Generate the client-side scheduling plan the WOHA client would
    //    ship to the JobTracker, and look at it.
    let cluster = ClusterConfig::uniform(8, 2, 1); // 8 slaves: 16 map + 8 reduce slots
    let total_slots = 24;
    let priorities = JobPriorities::compute(&workflow, PriorityPolicy::Lpf);
    let plan = generate_plan(&workflow, &priorities, total_slots, CapMode::MinFeasible);
    println!(
        "\nscheduling plan: cap {} slots, span {}, {} requirement entries, {} bytes encoded",
        plan.resource_cap(),
        plan.span(),
        plan.requirements().len(),
        plan.encoded_size_bytes(),
    );

    // 3. Run the workflow under the WOHA scheduler.
    let mut scheduler = WohaScheduler::new(WohaConfig::new(PriorityPolicy::Lpf, total_slots));
    let report = run_simulation(&[workflow], &mut scheduler, &cluster, &SimConfig::default());

    // 4. Inspect the outcome.
    let outcome = &report.outcomes[0];
    println!(
        "\nfinished at {} (deadline {}) — {}",
        outcome.finished.expect("workflow completes"),
        outcome.deadline,
        if outcome.met_deadline() {
            "deadline met"
        } else {
            "deadline MISSED"
        }
    );
    println!(
        "cluster utilization over the run: {:.1}%",
        report.overall_utilization() * 100.0
    );
    assert!(outcome.met_deadline());
    Ok(())
}
