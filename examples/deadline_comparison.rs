//! The paper's headline demo (Fig 11): three instances of the 33-job
//! Fig 7 workflow, submitted 5 minutes apart with deadlines 80/70/60
//! minutes, on a 32-slave cluster — under all six schedulers.
//!
//! Run with: `cargo run --release --example deadline_comparison`

use woha::prelude::*;
use woha::trace::topology::paper_fig7;

fn workflows() -> Vec<WorkflowSpec> {
    let releases = [0u64, 5, 10];
    let deadlines = [80u64, 70, 60];
    releases
        .iter()
        .zip(&deadlines)
        .enumerate()
        .map(|(i, (&rel, &dl))| {
            paper_fig7(format!("W-{}", i + 1))
                .submit_at(SimTime::from_mins(rel))
                .relative_deadline(SimDuration::from_mins(dl))
                .build()
                .expect("valid workflow")
        })
        .collect()
}

fn main() {
    let workflows = workflows();
    let cluster = ClusterConfig::uniform(32, 2, 1);
    let total_slots = 96;
    let config = SimConfig::default();

    println!("three 33-job workflows, releases 0/5/10 min, deadlines 80/70/60 min");
    println!("cluster: 32 slaves x (2 map + 1 reduce slot)\n");
    println!(
        "{:<10} {:>12} {:>12} {:>12} {:>8}",
        "scheduler", "W-1 span", "W-2 span", "W-3 span", "misses"
    );

    let run = |name: &str, scheduler: &mut dyn WorkflowScheduler| {
        let report = run_simulation(&workflows, scheduler, &cluster, &config);
        let spans = report.workspans();
        let misses = report.deadline_misses();
        println!(
            "{:<10} {:>12} {:>12} {:>12} {:>8}",
            name,
            spans[0].to_string(),
            spans[1].to_string(),
            spans[2].to_string(),
            misses
        );
    };

    run("EDF", &mut EdfScheduler::new());
    run("FIFO", &mut FifoScheduler::new());
    run("Fair", &mut FairScheduler::new());
    for policy in [
        PriorityPolicy::Lpf,
        PriorityPolicy::Hlf,
        PriorityPolicy::Mpf,
    ] {
        let mut woha = WohaScheduler::new(WohaConfig::new(policy, total_slots));
        run(&format!("WOHA-{policy}"), &mut woha);
    }

    println!("\nexpected shape (paper Fig 11): all three WOHA variants meet all three");
    println!("deadlines; EDF over-serves W-3 and misses W-1; FIFO starves W-3; Fair");
    println!("misses under contention.");
}
