//! The scheduler as a live service: a producer thread submits workflows
//! for two tenants over an in-process channel while the service runs on a
//! (sped-up) wall clock, applies per-tenant admission, and shuts down
//! cleanly once the feed goes idle.
//!
//! This is the library view of `woha-cli serve`; point `FollowSource` at
//! a growing JSONL file instead of the channel to tail a real feed.
//!
//! Run with: `cargo run --release --example live_service`

use std::time::Duration;
use woha::core::{MultiTenantGate, OverloadPolicy, TenantSpec};
use woha::prelude::*;

fn workflow(name: &str, submit: SimTime) -> WorkflowSpec {
    let mut b = WorkflowBuilder::new(name);
    let crunch = b.add_job(JobSpec::new(
        "crunch",
        6,
        2,
        SimDuration::from_secs(30),
        SimDuration::from_secs(60),
    ));
    let publish = b.add_job(JobSpec::new(
        "publish",
        2,
        1,
        SimDuration::from_secs(15),
        SimDuration::from_secs(30),
    ));
    b.add_dependency(crunch, publish);
    b.relative_deadline(SimDuration::from_mins(15));
    b.build().unwrap().reissued(
        name.to_string(),
        submit,
        submit + SimDuration::from_mins(15),
    )
}

fn main() {
    let cluster = ClusterConfig::uniform(6, 2, 1);

    // Tenants: "ads" may hold two workflows in flight, "etl" four; any
    // other namespace is rejected outright.
    let mut gate = MultiTenantGate::new(&cluster)
        .with_policy(OverloadPolicy::WeightedFair)
        .with_tenant(TenantSpec::new("ads", 2).with_weight(1.0))
        .with_tenant(TenantSpec::new("etl", 4).with_weight(2.0));

    // A producer thread plays the role of the outside world, submitting
    // a workflow every 20 simulated seconds, alternating tenants.
    let (tx, source) = ChannelSource::pair();
    let producer = std::thread::spawn(move || {
        for i in 0..6u64 {
            let tenant = if i % 2 == 0 { "ads" } else { "etl" };
            let name = format!("{tenant}/run-{i}");
            let submit = SimTime::from_secs(i * 20);
            if tx.send(workflow(&name, submit)).is_err() {
                return; // service already shut down
            }
            std::thread::sleep(Duration::from_millis(15));
        }
        // Dropping the sender ends the feed; the idle timeout below is
        // the belt to this suspender.
    });

    let mut scheduler = WohaScheduler::new(WohaConfig::new(PriorityPolicy::Lpf, 18));
    let outcome = run_service(
        source,
        None,
        &mut scheduler,
        &cluster,
        &SimConfig::default(),
        Some(&mut gate),
        None,
        &ServeConfig {
            // 600x: 20 simulated seconds pass every 33 real milliseconds.
            clock: ClockMode::Wall {
                speedup: 600.0,
                poll: Duration::from_millis(2),
            },
            buffer: 64,
            shutdown: ShutdownConfig {
                idle_timeout: Some(Duration::from_millis(500)),
                ..ShutdownConfig::default()
            },
            ..ServeConfig::default()
        },
    )
    .expect("valid service config");
    producer.join().expect("producer finishes");

    let cause = outcome
        .cause
        .map_or_else(|| "feed drained".to_string(), |c| c.to_string());
    println!(
        "service stopped ({cause}): {} arrivals, {} shed, queue peak {}",
        outcome.arrivals, outcome.shed, outcome.depth_peak
    );
    for o in &outcome.report.outcomes {
        println!(
            "  {:<12} submitted {:>6}  finished {:>8}  {}",
            o.name,
            o.submitted.to_string(),
            o.finished.map_or("-".to_string(), |t| t.to_string()),
            if o.met_deadline() { "met" } else { "MISSED" },
        );
    }
    if let Some(a) = &outcome.report.admission {
        for r in &a.rejections {
            println!("  rejected x{}: {}", r.count, r.reason);
        }
    }
    assert_eq!(outcome.report.deadline_misses(), 0);
    println!("\nevery admitted workflow met its deadline under live pacing.");
}
