//! The paper's motivating scenario: a revenue-critical advertisement
//! placement optimization pipeline competing with lower-priority analytics
//! workflows for one shared cluster.
//!
//! "Workflows tightly linked to time-sensitive advertisement placement
//! optimizations can directly affect revenue" (§I). Here a deadline-bound
//! ad pipeline is submitted while a large, deadline-less user-graph
//! analytics workflow is already soaking the cluster; WOHA keeps the ad
//! pipeline on schedule while the FIFO baseline lets the analytics job
//! starve it.
//!
//! Run with: `cargo run --release --example ad_pipeline`

use woha::prelude::*;

/// The ad pipeline: ingest click logs -> join with user profiles ->
/// train placement model -> publish, with a tight 45-minute deadline.
fn ad_pipeline(submit: SimTime) -> WorkflowSpec {
    let mut b = WorkflowBuilder::new("ad-placement");
    let ingest = b.add_job(JobSpec::new(
        "ingest-clicks",
        24,
        6,
        SimDuration::from_secs(60),
        SimDuration::from_secs(120),
    ));
    let join = b.add_job(JobSpec::new(
        "join-profiles",
        16,
        8,
        SimDuration::from_secs(90),
        SimDuration::from_secs(180),
    ));
    let train = b.add_job(JobSpec::new(
        "train-model",
        12,
        4,
        SimDuration::from_secs(120),
        SimDuration::from_secs(240),
    ));
    let publish = b.add_job(JobSpec::new(
        "publish",
        2,
        1,
        SimDuration::from_secs(30),
        SimDuration::from_secs(60),
    ));
    b.add_dependency(ingest, join);
    b.add_dependency(join, train);
    b.add_dependency(train, publish);
    b.submit_at(submit);
    b.relative_deadline(SimDuration::from_mins(25));
    b.build().expect("valid workflow")
}

/// Background analytics: a wide, heavy user-graph partitioning workflow
/// with a lax 4-hour deadline, submitted first.
fn analytics(submit: SimTime) -> WorkflowSpec {
    let mut b = WorkflowBuilder::new("user-graph-analytics");
    let prev: Vec<_> = (0..6)
        .map(|i| {
            b.add_job(JobSpec::new(
                format!("partition-{i}"),
                32,
                8,
                SimDuration::from_secs(120),
                SimDuration::from_secs(300),
            ))
        })
        .collect();
    let merge = b.add_job(JobSpec::new(
        "merge",
        8,
        4,
        SimDuration::from_secs(60),
        SimDuration::from_secs(240),
    ));
    for p in prev {
        b.add_dependency(p, merge);
    }
    b.submit_at(submit);
    b.relative_deadline(SimDuration::from_mins(240));
    b.build().expect("valid workflow")
}

fn main() {
    let workflows = vec![analytics(SimTime::ZERO), ad_pipeline(SimTime::from_mins(5))];
    let cluster = ClusterConfig::uniform(16, 2, 1); // 32 map + 16 reduce slots
    let config = SimConfig::default();

    println!("scenario: ad pipeline (25 min deadline) submitted 5 min after a");
    println!("4-hour-deadline analytics workflow, on a 16-slave cluster\n");

    for name in ["FIFO", "WOHA-LPF"] {
        let mut fifo;
        let mut woha;
        let scheduler: &mut dyn WorkflowScheduler = if name == "FIFO" {
            fifo = FifoScheduler::new();
            &mut fifo
        } else {
            woha = WohaScheduler::new(WohaConfig::new(PriorityPolicy::Lpf, 48));
            &mut woha
        };
        let report = run_simulation(&workflows, scheduler, &cluster, &config);
        println!("--- {name} ---");
        for o in &report.outcomes {
            println!(
                "  {:<22} finished {:>8} deadline {:>8} -> {}",
                o.name,
                o.finished.expect("completes").to_string(),
                o.deadline.to_string(),
                if o.met_deadline() { "met" } else { "MISSED" },
            );
        }
        println!();
    }
    println!("WOHA paces the analytics workflow against its lax deadline, freeing");
    println!("slots for the revenue-critical pipeline exactly when its plan needs them.");
}
