//! Plugging a user-defined Workflow Scheduler into the framework.
//!
//! The paper emphasizes that "users may replace the Scheduling Plan
//! Generator module and the Workflow Scheduler module in WOHA with their
//! own design" (§III-B). In this reproduction the same extension point is
//! the [`WorkflowScheduler`] trait: implement it and hand it to
//! `run_simulation`.
//!
//! The custom policy here is *Least Laxity First* over workflows: the
//! workflow whose `deadline - now - critical path remaining` is smallest
//! wins each slot. It is compared against WOHA and EDF on a small
//! contended scenario.
//!
//! Run with: `cargo run --release --example custom_scheduler`

use woha::model::{JobId, WorkflowId};
use woha::prelude::*;
use woha::sim::WorkflowPool;

/// Least-Laxity-First workflow scheduler: a ~40-line custom policy.
#[derive(Debug, Default)]
struct LeastLaxityFirst;

impl LeastLaxityFirst {
    /// Remaining critical path of a workflow: the longest chain of job
    /// lengths among jobs that have not completed yet.
    fn remaining_path_millis(pool: &WorkflowPool, wf: WorkflowId) -> u64 {
        let state = pool.workflow(wf);
        let spec = state.spec();
        let weights: Vec<u64> = spec
            .job_ids()
            .map(|j| {
                if state.job(j).phase() == woha::sim::JobPhase::Complete {
                    0
                } else {
                    spec.job(j).length().as_millis()
                }
            })
            .collect();
        spec.to_dag()
            .longest_path_to_sink(&weights)
            .expect("workflow DAGs are acyclic")
            .into_iter()
            .max()
            .unwrap_or(0)
    }
}

// Stateless policy: nothing to checkpoint on master failover.
impl SchedulerState for LeastLaxityFirst {}

impl WorkflowScheduler for LeastLaxityFirst {
    fn name(&self) -> &str {
        "LLF (custom)"
    }

    fn assign_task(
        &mut self,
        pool: &WorkflowPool,
        kind: SlotKind,
        now: SimTime,
    ) -> Option<(WorkflowId, JobId)> {
        // Pick the eligible workflow with the least laxity.
        let wf = pool
            .incomplete()
            .filter(|&wf| pool.workflow(wf).has_eligible_task(kind))
            .min_by_key(|&wf| {
                let spec = pool.workflow(wf).spec();
                let slack = spec.deadline().saturating_since(now).as_millis();
                let remaining = Self::remaining_path_millis(pool, wf);
                (slack.saturating_sub(remaining), wf)
            })?;
        // First eligible job wins within the workflow.
        woha::sim::first_eligible_job(pool, wf, kind).map(|job| (wf, job))
    }
}

fn contended_workflows() -> Vec<WorkflowSpec> {
    // Three chains with inverted deadline/length relationships, so naive
    // policies get at least one of them wrong.
    let mk = |name: &str, jobs: u32, submit_s: u64, deadline_s: u64| {
        let mut b = WorkflowBuilder::new(name);
        let mut prev = None;
        for i in 0..jobs {
            let id = b.add_job(JobSpec::new(
                format!("j{i}"),
                6,
                2,
                SimDuration::from_secs(30),
                SimDuration::from_secs(45),
            ));
            if let Some(p) = prev {
                b.add_dependency(p, id);
            }
            prev = Some(id);
        }
        b.submit_at(SimTime::from_secs(submit_s));
        b.relative_deadline(SimDuration::from_secs(deadline_s));
        b.build().expect("valid workflow")
    };
    vec![
        mk("long-lax", 6, 0, 2_400),
        mk("short-tight", 2, 30, 400),
        mk("medium", 4, 60, 1_300),
    ]
}

fn main() {
    let workflows = contended_workflows();
    let cluster = ClusterConfig::uniform(4, 2, 1);
    let config = SimConfig::default();

    let mut llf = LeastLaxityFirst;
    let mut edf = EdfScheduler::new();
    let mut woha = WohaScheduler::new(WohaConfig::new(PriorityPolicy::Lpf, 12));
    let schedulers: [&mut dyn WorkflowScheduler; 3] = [&mut llf, &mut edf, &mut woha];

    println!("three contending chains on a 4-slave cluster:\n");
    for scheduler in schedulers {
        let report = run_simulation(&workflows, scheduler, &cluster, &config);
        println!(
            "{:<14} misses {} of {}   max tardiness {}",
            report.scheduler,
            report.deadline_misses(),
            report.outcomes.len(),
            report.max_tardiness(),
        );
    }
    println!("\nany struct implementing WorkflowScheduler plugs straight into the");
    println!("simulated JobTracker — the paper's two-line configuration swap.");
}
