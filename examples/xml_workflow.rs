//! Submitting a workflow from an XML configuration file, exactly as a
//! WOHA user would with `hadoop dag /path/to/workflow.xml` (§III-B):
//! the configuration is validated, prerequisites are derived from the
//! input/output dataset paths, and the workflow runs under WOHA.
//!
//! Run with: `cargo run --release --example xml_workflow`

use woha::prelude::*;

const WORKFLOW_XML: &str = r#"
<workflow name="user-log-stats" deadline="50m">
  <!-- Raw log extraction; everything downstream reads its output. -->
  <job name="extract" mappers="24" reducers="6"
       map-duration="45s" reduce-duration="120s"
       jar="analytics.jar" main-class="com.example.Extract">
    <input path="/logs/raw/2014-06-14"/>
    <output path="/tmp/extracted"/>
  </job>

  <!-- Per-user session statistics. -->
  <job name="sessionize" mappers="16" reducers="8"
       map-duration="60s" reduce-duration="150s"
       jar="analytics.jar" main-class="com.example.Sessionize">
    <input path="/tmp/extracted"/>
    <output path="/tmp/sessions"/>
  </job>

  <!-- Content recommendation features. -->
  <job name="features" mappers="12" reducers="4"
       map-duration="50s" reduce-duration="100s"
       jar="analytics.jar" main-class="com.example.Features">
    <input path="/tmp/extracted"/>
    <output path="/tmp/features"/>
  </job>

  <!-- Final report joins sessions and features; also explicitly depends
       on extract for bookkeeping metadata. -->
  <job name="report" mappers="6" reducers="2"
       map-duration="40s" reduce-duration="200s"
       jar="analytics.jar" main-class="com.example.Report">
    <input path="/tmp/sessions"/>
    <input path="/tmp/features"/>
    <output path="/reports/user-log-stats"/>
    <depends on="extract"/>
  </job>
</workflow>
"#;

fn main() -> Result<(), ModelError> {
    // Parse and validate, as WOHA's Configuration Validator does.
    let config = WorkflowConfig::parse(WORKFLOW_XML)?;
    println!(
        "parsed workflow {:?}: {} jobs, deadline {}",
        config.name,
        config.jobs.len(),
        config
            .relative_deadline
            .map_or("none".to_string(), |d| d.to_string()),
    );

    // Build the validated spec; prerequisites come from matching dataset
    // paths plus the explicit <depends> edge.
    let workflow = config.to_spec(SimTime::ZERO)?;
    for job in workflow.job_ids() {
        let prereqs: Vec<String> = workflow
            .prerequisites(job)
            .iter()
            .map(|&p| workflow.job(p).name().to_string())
            .collect();
        println!(
            "  {:<12} <- [{}]",
            workflow.job(job).name(),
            prereqs.join(", ")
        );
    }

    // Round-trip back to XML (what the client stores in HDFS).
    let roundtrip = WorkflowConfig::from(&workflow).to_xml();
    assert_eq!(
        WorkflowConfig::parse(&roundtrip)?.to_spec(SimTime::ZERO)?,
        workflow
    );

    // Run it.
    let cluster = ClusterConfig::uniform(12, 2, 1);
    let mut scheduler = WohaScheduler::new(WohaConfig::new(PriorityPolicy::Hlf, 36));
    let report = run_simulation(&[workflow], &mut scheduler, &cluster, &SimConfig::default());
    let outcome = &report.outcomes[0];
    println!(
        "\nfinished at {} (deadline {}) — {}",
        outcome.finished.expect("completes"),
        outcome.deadline,
        if outcome.met_deadline() {
            "deadline met"
        } else {
            "deadline MISSED"
        }
    );
    Ok(())
}
