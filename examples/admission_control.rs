//! Admission control in front of WOHA: accept deadline-bound workflows
//! only while the demand-bound test says the set can still be feasible,
//! then verify with the simulator that everything admitted actually meets
//! its deadline — while the rejected overload would not have.
//!
//! Also demonstrates the Oozie `workflow-app` adapter: the submitted
//! workflows arrive as real Oozie hPDL documents.
//!
//! Run with: `cargo run --release --example admission_control`

use woha::core::admission::AdmissionController;
use woha::model::oozie::{from_oozie_xml, JobSizing};
use woha::prelude::*;

const OOZIE_APP: &str = r#"
<workflow-app name="TEMPLATE">
  <start to="ingest"/>
  <action name="ingest">
    <map-reduce/>
    <ok to="split"/>
    <error to="fail"/>
  </action>
  <fork name="split">
    <path start="stats"/>
    <path start="model"/>
  </fork>
  <action name="stats">
    <map-reduce/>
    <ok to="merge"/>
    <error to="fail"/>
  </action>
  <action name="model">
    <map-reduce/>
    <ok to="merge"/>
    <error to="fail"/>
  </action>
  <join name="merge" to="publish"/>
  <action name="publish">
    <map-reduce/>
    <ok to="done"/>
    <error to="fail"/>
  </action>
  <kill name="fail"><message>failed</message></kill>
  <end name="done"/>
</workflow-app>"#;

fn instance(index: usize, deadline: SimDuration) -> WorkflowSpec {
    let xml = OOZIE_APP.replace("TEMPLATE", &format!("pipeline-{index}"));
    let mut config = from_oozie_xml(&xml, |action| JobSizing {
        mappers: if action == "ingest" { 24 } else { 10 },
        reducers: 3,
        map_duration: SimDuration::from_secs(45),
        reduce_duration: SimDuration::from_secs(90),
    })
    .expect("valid hPDL");
    config.relative_deadline = Some(deadline);
    config.to_spec(SimTime::ZERO).expect("valid workflow")
}

fn main() {
    let cluster = ClusterConfig::uniform(6, 2, 1); // 12 map + 6 reduce slots
                                                   // A conservative margin: deep fork/join phase structure packs far less
                                                   // tightly than raw capacity suggests.
    let mut controller = AdmissionController::new(&cluster).with_margin(0.55);

    // Eight identical pipelines all want to finish within 25 minutes.
    let mut admitted = Vec::new();
    println!("offering 8 Oozie pipelines (deadline 25m each) to an 18-slot cluster:\n");
    for i in 0..8 {
        let w = instance(i, SimDuration::from_mins(25));
        match controller.try_admit(&w, SimTime::ZERO) {
            Ok(()) => {
                println!("  {} admitted", w.name());
                admitted.push(w);
            }
            Err(reason) => println!("  {} REJECTED: {reason}", w.name()),
        }
    }

    // Run the admitted set under WOHA and check the promise held.
    let mut scheduler = WohaScheduler::new(WohaConfig::new(PriorityPolicy::Lpf, 18));
    let report = run_simulation(&admitted, &mut scheduler, &cluster, &SimConfig::default());
    println!(
        "\nsimulated outcome: {} admitted, {} deadline misses, makespan {}",
        admitted.len(),
        report.deadline_misses(),
        report.end_time,
    );
    assert_eq!(report.deadline_misses(), 0, "admission kept its promise");

    println!("\nthe demand-bound test is necessary, not sufficient: admitted sets");
    println!("can still be unlucky, but here WOHA delivers every admitted deadline.");
}
